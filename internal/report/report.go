// Package report renders experiment results as aligned text tables and CSV,
// the output format of the reproduction harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying the cells with %v and formatting floats
// to three decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as RFC 4180 CSV: cells containing commas,
// quotes, or newlines are quoted and embedded quotes doubled, so any cell
// value round-trips through a standard CSV reader.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
