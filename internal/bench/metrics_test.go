package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"vgiw/internal/kernels"
	"vgiw/internal/trace"
)

func TestCollectMetrics(t *testing.T) {
	runs := allRuns(t)
	reg := CollectMetrics(runs)
	if got := reg.Counter("suite/kernels"); got != uint64(len(runs)) {
		t.Errorf("suite/kernels = %d, want %d", got, len(runs))
	}
	flat := reg.Flat()
	for _, r := range runs {
		p := r.Spec.Name + "/"
		if flat[p+"vgiw.cycles"] == 0 {
			t.Errorf("%svgiw.cycles missing or zero", p)
		}
		if flat[p+"simt.cycles"] == 0 {
			t.Errorf("%ssimt.cycles missing or zero", p)
		}
		if (r.SGMF != nil) != (flat[p+"sgmf.cycles"] != 0) {
			t.Errorf("%ssgmf.cycles presence does not match the SGMF run", p)
		}
		// Dense op counters: every unit class appears even when unused.
		for _, cl := range []string{"alu", "scu", "ldst", "lvu", "sju", "cvu"} {
			if _, ok := flat[p+"vgiw.ops."+cl]; !ok {
				t.Errorf("%svgiw.ops.%s missing (op counters must be dense)", p, cl)
			}
		}
	}
	// Histograms expand in Flat.
	if flat[runs[0].Spec.Name+"/vgiw.block_threads.count"] == 0 {
		t.Errorf("block_threads histogram missing")
	}

	// The suffix set is identical no matter which kernels ran — spot-check
	// that per-kernel names collapse onto shared suffixes.
	suffixes := MetricSuffixes(reg)
	want := map[string]bool{"vgiw.cycles": true, "simt.rf.reads": true, "sgmf.cycles": true}
	for _, s := range suffixes {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("MetricSuffixes missing %v", want)
	}
}

// TestOptionsTracePlumbing checks the harness routes one sink into all three
// machines: a traced SGMF-mappable kernel must produce events in every
// backend's category, and AllocProcess must have named all three processes.
func TestOptionsTracePlumbing(t *testing.T) {
	var spec kernels.Spec
	for _, s := range kernels.All() {
		if s.SGMF {
			spec = s
			break
		}
	}
	if spec.Name == "" {
		t.Skip("no SGMF-mappable kernel in the registry")
	}
	opt := DefaultOptions()
	opt.Trace = trace.NewSink(trace.CatAll)
	kr, err := RunOne(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if kr.SGMF == nil {
		t.Fatalf("%s did not run on SGMF", spec.Name)
	}
	if opt.Trace.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	var buf bytes.Buffer
	if err := opt.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("traced run export invalid: %v", err)
	}
	out := buf.String()
	for _, proc := range []string{spec.Name + "/vgiw", spec.Name + "/simt", spec.Name + "/sgmf"} {
		if !strings.Contains(out, `"`+proc+`"`) {
			t.Errorf("trace missing process %q", proc)
		}
	}
}

// TestTelemetryTableCSVRoundTrip renders the harness telemetry (per-kernel
// StageTimes + cache counters) and re-parses the CSV form.
func TestTelemetryTableCSVRoundTrip(t *testing.T) {
	runs := allRuns(t)
	s := &SuiteResult{Runs: runs, Parallelism: 1}
	for _, kr := range runs {
		s.Stages.Add(kr.Stages)
	}
	tbl := TelemetryTable(s)

	var human bytes.Buffer
	if err := tbl.Write(&human); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simulate_ms", "TOTAL", "cache hits/misses"} {
		if !strings.Contains(human.String(), want) {
			t.Errorf("human telemetry output missing %q", want)
		}
	}

	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("telemetry CSV does not re-parse: %v", err)
	}
	// Header + one row per kernel + TOTAL + cache row.
	if len(rec) != len(runs)+3 {
		t.Fatalf("telemetry CSV has %d records, want %d", len(rec), len(runs)+3)
	}
	if rec[0][0] != "kernel" || rec[0][5] != "simulate_ms" {
		t.Errorf("telemetry CSV header = %v", rec[0])
	}
	for i, kr := range runs {
		if rec[i+1][0] != kr.Spec.Name {
			t.Errorf("row %d kernel = %q, want %q", i+1, rec[i+1][0], kr.Spec.Name)
		}
	}
}
