package bench

import (
	"fmt"

	"vgiw/internal/kernels"
	"vgiw/internal/mem"
)

// JobSpec is the wire-level description of one harness job — the request
// body the vgiwd daemon accepts and the serving-side twin of Options. It
// covers the design-space knobs a config-sweep client varies (scale, LVC
// capacity, CVT budget, L1 write policy, ablations) without exposing the
// host-side tuning in Options (parallelism, cache handles, sinks), which the
// server owns.
//
// The zero value means "the paper's default machine on the full registry at
// scale 1". Normalize fills defaults and validates; after Normalize, equal
// JobSpec values describe identical simulations, so the normalized spec is
// the job-level content key the daemon's singleflight dedup uses (the same
// content-keying idea the ArtifactCache applies per artifact).
type JobSpec struct {
	// Kernel is a registry name ("bfs.kernel1"). Empty with Suite unset is
	// rejected; mutually exclusive with Suite and Source.
	Kernel string `json:"kernel,omitempty"`
	// Suite runs the full benchmark registry.
	Suite bool `json:"suite,omitempty"`
	// Source is kasm kernel-assembly text. A source job runs the compiler
	// pipeline (parse, fabric-fitted compile, place) and reports the
	// per-block placement summary; it has no workload, so nothing is
	// simulated.
	Source string `json:"source,omitempty"`

	// Scale is the workload scale factor (0 = 1).
	Scale int `json:"scale,omitempty"`
	// SkipSGMF disables the SGMF runs.
	SkipSGMF bool `json:"skip_sgmf,omitempty"`
	// LVCKB overrides the live-value cache capacity, in KiB (0 = default 64).
	LVCKB int `json:"lvc_kb,omitempty"`
	// CVTBits overrides the control vector table bit budget (0 = default 2^16).
	CVTBits int `json:"cvt_bits,omitempty"`
	// Mem selects the VGIW L1 write policy: "", "writeback", "writethrough".
	Mem string `json:"mem,omitempty"`
	// ReplicationOff forces one replica per block (ablation).
	ReplicationOff bool `json:"replication_off,omitempty"`
	// Trace captures a cycle-level trace during the run, served from the
	// daemon's GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
	// TraceFilter is the comma-separated category filter for Trace
	// (vgiw,cvt,lvc,simt,sgmf,engine,mem; empty = all).
	TraceFilter string `json:"trace_filter,omitempty"`
	// Fast runs both simulators' engines in functional-only mode
	// (engine.Options.Fast): identical results and operation counts, no
	// cycle-level accounting — for result validation and functional sweeps
	// where timing is irrelevant.
	Fast bool `json:"fast,omitempty"`
	// TimeoutMS caps the job's execution time in milliseconds (0 = the
	// server's default deadline).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify runs the kernel-IR verifier after every compiler pass and the
	// placed-graph checker after placement (internal/verify). It changes
	// timings, never results, but is part of the content key: a verified
	// artifact attests more than an unverified one.
	Verify bool `json:"verify,omitempty"`
}

// Normalize validates the spec and fills defaults in place, so that equal
// normalized specs describe identical simulations.
func (s *JobSpec) Normalize() error {
	modes := 0
	if s.Kernel != "" {
		modes++
	}
	if s.Suite {
		modes++
	}
	if s.Source != "" {
		modes++
	}
	if modes == 0 {
		return fmt.Errorf("spec: one of kernel, suite, or source is required")
	}
	if modes > 1 {
		return fmt.Errorf("spec: kernel, suite, and source are mutually exclusive")
	}
	if s.Kernel != "" {
		if _, ok := kernels.ByName(s.Kernel); !ok {
			return fmt.Errorf("spec: unknown kernel %q", s.Kernel)
		}
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Scale < 1 || s.Scale > 64 {
		return fmt.Errorf("spec: scale %d out of range [1,64]", s.Scale)
	}
	if s.LVCKB < 0 || s.CVTBits < 0 {
		return fmt.Errorf("spec: negative LVC/CVT capacity")
	}
	switch s.Mem {
	case "", "writeback", "writethrough":
	default:
		return fmt.Errorf("spec: unknown mem policy %q (want writeback or writethrough)", s.Mem)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("spec: negative timeout_ms")
	}
	if !s.Trace && s.TraceFilter != "" {
		return fmt.Errorf("spec: trace_filter set without trace")
	}
	return nil
}

// Options maps the normalized spec onto harness options: the paper's default
// machines with the spec's design-space overrides applied. Host-side fields
// (Parallelism, Cache, Trace sink) are left at their zero values for the
// caller — the daemon, which owns those resources — to fill in.
func (s *JobSpec) Options() (Options, error) {
	if err := s.Normalize(); err != nil {
		return Options{}, err
	}
	opt := DefaultOptions()
	opt.Scale = s.Scale
	opt.SkipSGMF = s.SkipSGMF
	opt.Parallelism = 0
	if s.LVCKB > 0 {
		opt.VGIW.LVC.SizeBytes = s.LVCKB << 10
	}
	if s.CVTBits > 0 {
		opt.VGIW.CVTCapacityBits = s.CVTBits
	}
	if s.Mem == "writethrough" {
		opt.VGIW.Mem.L1.Policy = mem.WriteThrough
	}
	opt.VGIW.ReplicationOff = s.ReplicationOff
	opt.VGIW.Checked = s.Verify
	opt.SGMF.Checked = s.Verify
	opt.VGIW.Engine.Fast = s.Fast
	opt.SGMF.Engine.Fast = s.Fast
	return opt, nil
}

// Specs resolves the kernel set the job runs: the named kernel or the full
// registry. Source jobs return nil (nothing is simulated).
func (s *JobSpec) Specs() []kernels.Spec {
	switch {
	case s.Suite:
		return kernels.All()
	case s.Kernel != "":
		if spec, ok := kernels.ByName(s.Kernel); ok {
			return []kernels.Spec{spec}
		}
	}
	return nil
}

// Key is the job-level content key: two jobs with equal keys are guaranteed
// to produce byte-identical results, so an in-flight job with the same key
// can be shared instead of re-executed (singleflight). The key is the
// normalized spec minus TimeoutMS — a deadline changes when a job is allowed
// to fail, never what it computes.
func (s JobSpec) Key() JobSpec {
	s.TimeoutMS = 0
	return s
}
