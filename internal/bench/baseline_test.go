package bench

import (
	"path/filepath"
	"testing"
)

// TestCheckedInBaselinesParse is the satellite gate for the unified loader:
// both checked-in baseline files must parse under their declared schemas and
// satisfy the monotone-date invariant, so cmd/benchgate can consume either.
func TestCheckedInBaselinesParse(t *testing.T) {
	for _, tc := range []struct {
		file string
		kind string
	}{
		{"BENCH_engine.json", "trajectory"},
		{"BENCH_trace.json", "metrics"},
	} {
		b, err := LoadBaseline(filepath.Join("..", "..", tc.file))
		if err != nil {
			t.Errorf("%s: %v", tc.file, err)
			continue
		}
		if b.Kind() != tc.kind {
			t.Errorf("%s: kind %q, want %q", tc.file, b.Kind(), tc.kind)
		}
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", tc.file, err)
		}
		if len(b.Series()) == 0 {
			t.Errorf("%s: empty series", tc.file)
		}
	}
}

func TestParseBaselineRejectsUnknownSchema(t *testing.T) {
	if _, err := ParseBaseline([]byte(`{"schema":"vgiw-bench/v999","entries":[]}`), "x"); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ParseBaseline([]byte(`not json`), "x"); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestBaselineValidateMonotoneDates(t *testing.T) {
	b := &Baseline{Path: "x", Trajectory: &Trajectory{Schema: BenchSchema, Entries: []TrajectoryEntry{
		{Commit: "a", Date: "2026-08-02", Bench: "BenchmarkX", NsPerOp: 100},
		{Commit: "b", Date: "2026-08-01", Bench: "BenchmarkX", NsPerOp: 90},
	}}}
	if err := b.Validate(); err == nil {
		t.Error("backwards dates accepted")
	}
	b.Trajectory.Entries[1].Date = "2026-08-02"
	if err := b.Validate(); err != nil {
		t.Errorf("equal dates rejected: %v", err)
	}
}

// TestTrajectoryRecordIdempotent pins the bench-record satellite: recording
// the same (commit, bench) twice replaces in place instead of duplicating,
// while new commits still append.
func TestTrajectoryRecordIdempotent(t *testing.T) {
	var traj Trajectory
	traj.Record([]TrajectoryEntry{
		{Commit: "aaa", Date: "2026-08-01", Bench: "BenchmarkX", NsPerOp: 100},
		{Commit: "aaa", Date: "2026-08-01", Bench: "BenchmarkY", NsPerOp: 50},
	})
	// Re-record the same commit with refined numbers: no growth, values move.
	traj.Record([]TrajectoryEntry{
		{Commit: "aaa", Date: "2026-08-02", Bench: "BenchmarkX", NsPerOp: 80},
	})
	if len(traj.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (re-record must replace, not append)", len(traj.Entries))
	}
	if traj.Entries[0].NsPerOp != 80 || traj.Entries[0].Date != "2026-08-02" {
		t.Errorf("entry 0 not replaced in place: %+v", traj.Entries[0])
	}
	if traj.Entries[0].Bench != "BenchmarkX" || traj.Entries[1].Bench != "BenchmarkY" {
		t.Errorf("order disturbed: %+v", traj.Entries)
	}
	// A new commit appends.
	traj.Record([]TrajectoryEntry{
		{Commit: "bbb", Date: "2026-08-03", Bench: "BenchmarkX", NsPerOp: 70},
	})
	if len(traj.Entries) != 3 || traj.Entries[2].Commit != "bbb" {
		t.Fatalf("new commit did not append: %+v", traj.Entries)
	}
	if e, ok := traj.Latest("BenchmarkX"); !ok || e.NsPerOp != 70 {
		t.Errorf("Latest(BenchmarkX) = %+v, %v", e, ok)
	}
	if traj.Schema != BenchSchema {
		t.Errorf("schema = %q", traj.Schema)
	}
}
