package bench

import (
	"context"
	"errors"
	"testing"

	"vgiw/internal/kernels"
)

// TestRunOneCtxCancelled verifies an already-cancelled context preempts a run
// before (or during) simulation and surfaces context.Canceled.
func TestRunOneCtxCancelled(t *testing.T) {
	spec, ok := kernels.ByName("bfs.kernel1")
	if !ok {
		t.Fatal("bfs.kernel1 not registered")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunOneCtx(ctx, spec, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOneCtx err = %v, want context.Canceled", err)
	}
}

// TestRunOneCtxDeadline verifies a deadline that expires mid-simulation
// preempts the cycle loops (the run is far longer than the deadline).
func TestRunOneCtxDeadline(t *testing.T) {
	spec, ok := kernels.ByName("hotspot.kernel")
	if !ok {
		t.Fatal("hotspot.kernel not registered")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	_, err := RunOneCtx(ctx, spec, DefaultOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunOneCtx err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunMatrixCtxCancelled verifies the worker pool stops claiming kernels
// once the context is cancelled and the joined error reports it.
func TestRunMatrixCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs, err := RunMatrixCtx(ctx, kernels.All(), DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunMatrixCtx err = %v, want context.Canceled", err)
	}
	if len(runs) != 0 {
		t.Fatalf("RunMatrixCtx completed %d runs under a pre-cancelled context", len(runs))
	}
}
