package bench

import (
	"testing"

	"vgiw/internal/mem"
)

func TestJobSpecNormalizeDefaults(t *testing.T) {
	s := JobSpec{Kernel: "bfs.kernel1"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Scale != 1 {
		t.Fatalf("Scale = %d, want 1", s.Scale)
	}
	if got := s.Specs(); len(got) != 1 || got[0].Name != "bfs.kernel1" {
		t.Fatalf("Specs() = %v", got)
	}
}

func TestJobSpecRejects(t *testing.T) {
	bad := []JobSpec{
		{},                                   // no mode
		{Kernel: "bfs.kernel1", Suite: true}, // two modes
		{Kernel: "no.such.kernel"},
		{Suite: true, Scale: 65},
		{Suite: true, Mem: "writeback2"},
		{Suite: true, TimeoutMS: -1},
		{Suite: true, TraceFilter: "vgiw"}, // filter without trace
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d (%+v): Normalize accepted, want error", i, s)
		}
	}
}

func TestJobSpecOptionsMapping(t *testing.T) {
	s := JobSpec{Kernel: "hotspot.kernel", Scale: 2, LVCKB: 16, CVTBits: 1 << 12,
		Mem: "writethrough", SkipSGMF: true, ReplicationOff: true}
	opt, err := s.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Scale != 2 || !opt.SkipSGMF {
		t.Fatalf("scale/skipSGMF not mapped: %+v", opt)
	}
	if opt.VGIW.LVC.SizeBytes != 16<<10 {
		t.Fatalf("LVC = %d bytes, want %d", opt.VGIW.LVC.SizeBytes, 16<<10)
	}
	if opt.VGIW.CVTCapacityBits != 1<<12 {
		t.Fatalf("CVT = %d bits, want %d", opt.VGIW.CVTCapacityBits, 1<<12)
	}
	if opt.VGIW.Mem.L1.Policy != mem.WriteThrough {
		t.Fatal("L1 policy not mapped to writethrough")
	}
	if !opt.VGIW.ReplicationOff {
		t.Fatal("ReplicationOff not mapped")
	}
}

func TestJobSpecKeyIgnoresDeadline(t *testing.T) {
	a := JobSpec{Kernel: "bfs.kernel1", TimeoutMS: 50}
	b := JobSpec{Kernel: "bfs.kernel1", TimeoutMS: 5000}
	if a.Key() != b.Key() {
		t.Fatal("keys differ on TimeoutMS alone")
	}
	c := JobSpec{Kernel: "bfs.kernel1", LVCKB: 32}
	if a.Key() == c.Key() {
		t.Fatal("keys collide across different LVC configs")
	}
	d := JobSpec{Kernel: "bfs.kernel1", Trace: true}
	if a.Key() == d.Key() {
		t.Fatal("keys collide across trace on/off (trace artifact differs)")
	}
}
