// Package bench is the experiment harness: it runs each benchmark kernel on
// the VGIW machine, the Fermi-like SIMT baseline, and (where mappable) the
// SGMF baseline, validates every run against the host reference, prices the
// runs with the energy model, and computes the metrics behind the paper's
// figures (3, 7, 8, 9, 10, 11) and tables (1, 2).
package bench

import (
	"fmt"
	"math"

	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/power"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
)

// Options configures a harness run.
type Options struct {
	Scale int // workload scale factor (1 = default laptop size)
	VGIW  core.Config
	SIMT  simt.Config
	SGMF  sgmf.Config
	Power power.Table
	// SkipSGMF disables the SGMF runs (they re-run the kernel a third time).
	SkipSGMF bool
}

// DefaultOptions returns the paper's machine configurations.
func DefaultOptions() Options {
	return Options{
		Scale: 1,
		VGIW:  core.DefaultConfig(),
		SIMT:  simt.DefaultConfig(),
		SGMF:  sgmf.DefaultConfig(),
		Power: power.DefaultTable(),
	}
}

// KernelRun holds one benchmark's results on all machines.
type KernelRun struct {
	Spec   kernels.Spec
	Blocks int // block count after VGIW compilation (fabric-fitted)

	VGIW *core.Result
	SIMT *simt.Result
	SGMF *sgmf.Result // nil when the kernel is not SGMF-mappable

	EnergyVGIW power.Breakdown
	EnergySIMT power.Breakdown
	EnergySGMF power.Breakdown // valid when SGMF != nil
}

// Speedup is Figure 7's metric: SIMT cycles / VGIW cycles.
func (k *KernelRun) Speedup() float64 {
	return float64(k.SIMT.Cycles) / float64(k.VGIW.Cycles)
}

// SpeedupVsSGMF is Figure 8's metric (0 when SGMF cannot run the kernel).
func (k *KernelRun) SpeedupVsSGMF() float64 {
	if k.SGMF == nil {
		return 0
	}
	return float64(k.SGMF.Cycles) / float64(k.VGIW.Cycles)
}

// LVCOverRF is Figure 3's metric: LVC accesses as a fraction of the
// baseline's register file accesses (both counted per word).
func (k *KernelRun) LVCOverRF() float64 {
	rf := k.SIMT.RFReads + k.SIMT.RFWrites
	if rf == 0 {
		return 0
	}
	return float64(k.VGIW.LVCLoads+k.VGIW.LVCStores) / float64(rf)
}

// EnergyEff is Figures 9/10's metric at system/die/core levels: the paper
// defines efficiency as work/energy, so the ratio over the baseline is
// E_baseline / E_vgiw.
func (k *KernelRun) EnergyEff(level string) float64 {
	var base, v float64
	switch level {
	case "core":
		base, v = k.EnergySIMT.CoreLevel(), k.EnergyVGIW.CoreLevel()
	case "die":
		base, v = k.EnergySIMT.DieLevel(), k.EnergyVGIW.DieLevel()
	default:
		base, v = k.EnergySIMT.SystemLevel(), k.EnergyVGIW.SystemLevel()
	}
	return power.Efficiency(base, v)
}

// EnergyEffVsSGMF is Figure 11's metric.
func (k *KernelRun) EnergyEffVsSGMF() float64 {
	if k.SGMF == nil {
		return 0
	}
	return power.Efficiency(k.EnergySGMF.SystemLevel(), k.EnergyVGIW.SystemLevel())
}

// RunOne executes one benchmark on all machines, validating each result.
func RunOne(spec kernels.Spec, opt Options) (*KernelRun, error) {
	out := &KernelRun{Spec: spec}

	// VGIW.
	inst, err := spec.Build(opt.Scale)
	if err != nil {
		return nil, err
	}
	mv, err := core.NewMachine(opt.VGIW)
	if err != nil {
		return nil, err
	}
	ck, err := mv.Compile(inst.Kernel)
	if err != nil {
		return nil, fmt.Errorf("%s: vgiw compile: %w", spec.Name, err)
	}
	out.Blocks = len(ck.Kernel.Blocks)
	rv, err := mv.Run(ck, inst.Launch, inst.Global)
	if err != nil {
		return nil, fmt.Errorf("%s: vgiw: %w", spec.Name, err)
	}
	if err := inst.Check(inst.Global); err != nil {
		return nil, fmt.Errorf("%s: vgiw output: %w", spec.Name, err)
	}
	out.VGIW = rv
	out.EnergyVGIW = power.VGIW(rv, opt.Power)

	// SIMT baseline (compiled without fabric-driven splitting, as a native
	// CUDA compile would be).
	inst, err = spec.Build(opt.Scale)
	if err != nil {
		return nil, err
	}
	cks, err := compile.Compile(inst.Kernel)
	if err != nil {
		return nil, err
	}
	rs, err := simt.NewMachine(opt.SIMT).Run(cks, inst.Launch, inst.Global)
	if err != nil {
		return nil, fmt.Errorf("%s: simt: %w", spec.Name, err)
	}
	if err := inst.Check(inst.Global); err != nil {
		return nil, fmt.Errorf("%s: simt output: %w", spec.Name, err)
	}
	out.SIMT = rs
	out.EnergySIMT = power.SIMT(rs, opt.Power)

	// SGMF, when mappable.
	if spec.SGMF && !opt.SkipSGMF {
		inst, err = spec.Build(opt.Scale)
		if err != nil {
			return nil, err
		}
		mg, err := sgmf.NewMachine(opt.SGMF)
		if err != nil {
			return nil, err
		}
		rg, err := mg.Run(inst.Kernel, inst.Launch, inst.Global)
		if err != nil {
			return nil, fmt.Errorf("%s: sgmf: %w", spec.Name, err)
		}
		if err := inst.Check(inst.Global); err != nil {
			return nil, fmt.Errorf("%s: sgmf output: %w", spec.Name, err)
		}
		out.SGMF = rg
		out.EnergySGMF = power.SGMF(rg, opt.Power)
	}
	return out, nil
}

// RunAll executes the full registry.
func RunAll(opt Options) ([]*KernelRun, error) {
	var runs []*KernelRun
	for _, spec := range kernels.All() {
		kr, err := RunOne(spec, opt)
		if err != nil {
			return nil, err
		}
		runs = append(runs, kr)
	}
	return runs, nil
}

// Geomean returns the geometric mean of positive values (zeros skipped).
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
