// Package bench is the experiment harness: it runs each benchmark kernel on
// the VGIW machine, the Fermi-like SIMT baseline, and (where mappable) the
// SGMF baseline, validates every run against the host reference, prices the
// runs with the energy model, and computes the metrics behind the paper's
// figures (3, 7, 8, 9, 10, 11) and tables (1, 2).
package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/power"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
	"vgiw/internal/trace"
)

// Options configures a harness run.
type Options struct {
	Scale int // workload scale factor (1 = default laptop size)
	VGIW  core.Config
	SIMT  simt.Config
	SGMF  sgmf.Config
	Power power.Table
	// SkipSGMF disables the SGMF runs (they re-run the kernel a third time).
	SkipSGMF bool
	// Parallelism caps how many kernel runs execute concurrently. Each run
	// builds its own machines and memory image, so runs share no mutable
	// state and the results are bit-identical to a serial sweep. 0 (the
	// zero value) means runtime.NumCPU(); 1 forces the serial path.
	Parallelism int
	// Cache shares compile/place and workload artifacts across runs. When
	// nil (and NoCache is false), RunMatrix/RunSuite/LVCSweep create a
	// private cache for the call; pass one explicitly to share artifacts
	// across several harness calls (the experiment CLI shares one between
	// the figure matrix and the LVC sweep).
	Cache *ArtifactCache
	// NoCache disables artifact sharing entirely: every run rebuilds its
	// workload and compiles from scratch. Results are byte-identical with
	// the cache on or off — this is an escape hatch and the reference
	// point for the determinism tests.
	NoCache bool
	// Trace, when non-nil, receives cycle-level events from every machine in
	// the sweep (the sink is mutex-protected, so parallel sweeps may share
	// one; event interleaving across kernels then follows host scheduling,
	// but each run's own track is internally ordered). Simulated results are
	// byte-identical with tracing on or off.
	Trace *trace.Sink
}

// DefaultOptions returns the paper's machine configurations.
func DefaultOptions() Options {
	return Options{
		Scale:       1,
		VGIW:        core.DefaultConfig(),
		SIMT:        simt.DefaultConfig(),
		SGMF:        sgmf.DefaultConfig(),
		Power:       power.DefaultTable(),
		Parallelism: runtime.NumCPU(),
	}
}

// effectiveCache resolves the cache a run should consult: nil under
// -no-cache (a nil *ArtifactCache builds everything fresh).
func (o Options) effectiveCache() *ArtifactCache {
	if o.NoCache {
		return nil
	}
	return o.Cache
}

// withSweepCache equips a sweep-scoped options copy with a private cache
// when the caller did not supply one (and caching is not disabled).
func (o Options) withSweepCache() Options {
	if o.Cache == nil && !o.NoCache {
		o.Cache = NewArtifactCache()
	}
	return o
}

// workers resolves Parallelism for a sweep of n independent work items.
func (o Options) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(i) for every i in [0,n), fanning the calls across the
// options' worker pool. fn must be safe to call concurrently for distinct i.
// Once ctx is done workers stop claiming new items (items already started
// observe the cancellation themselves, through the simulators' own polls).
// Each item is a whole kernel simulation, so polling per item is coarse.
//
//vgiw:coarsepoll
func (o Options) forEach(ctx context.Context, n int, fn func(i int)) {
	w := o.workers(n)
	if w == 1 {
		for i := 0; i < n && ctx.Err() == nil; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for ; w > 0; w-- {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// KernelRun holds one benchmark's results on all machines.
type KernelRun struct {
	Spec   kernels.Spec
	Blocks int // block count after VGIW compilation (fabric-fitted)

	VGIW *core.Result
	SIMT *simt.Result
	SGMF *sgmf.Result // nil when the kernel is not SGMF-mappable

	EnergyVGIW power.Breakdown
	EnergySIMT power.Breakdown
	EnergySGMF power.Breakdown // valid when SGMF != nil

	// Elapsed is the wall-clock time this kernel's simulations took (all
	// machines, including validation). It is host timing, not a simulated
	// metric, so determinism checks must ignore it.
	Elapsed time.Duration
	// Stages splits Elapsed by pipeline stage. Artifact-build stages
	// (Instance/Compile/Place) are attributed to the run that actually
	// built the artifact; runs served from the cache report (near) zero
	// there. Host timing — determinism checks must ignore it.
	Stages StageTimes
}

// Speedup is Figure 7's metric: SIMT cycles / VGIW cycles. A degenerate
// zero-cycle run reports 0 rather than leaking +Inf/NaN into geomeans
// (Geomean skips non-positive values).
func (k *KernelRun) Speedup() float64 {
	if k.VGIW.Cycles == 0 {
		return 0
	}
	return float64(k.SIMT.Cycles) / float64(k.VGIW.Cycles)
}

// SpeedupVsSGMF is Figure 8's metric (0 when SGMF cannot run the kernel or
// the VGIW run is degenerate).
func (k *KernelRun) SpeedupVsSGMF() float64 {
	if k.SGMF == nil || k.VGIW.Cycles == 0 {
		return 0
	}
	return float64(k.SGMF.Cycles) / float64(k.VGIW.Cycles)
}

// LVCOverRF is Figure 3's metric: LVC accesses as a fraction of the
// baseline's register file accesses (both counted per word).
func (k *KernelRun) LVCOverRF() float64 {
	rf := k.SIMT.RFReads + k.SIMT.RFWrites
	if rf == 0 {
		return 0
	}
	return float64(k.VGIW.LVCLoads+k.VGIW.LVCStores) / float64(rf)
}

// EnergyEff is Figures 9/10's metric at system/die/core levels: the paper
// defines efficiency as work/energy, so the ratio over the baseline is
// E_baseline / E_vgiw.
func (k *KernelRun) EnergyEff(level string) float64 {
	var base, v float64
	switch level {
	case "core":
		base, v = k.EnergySIMT.CoreLevel(), k.EnergyVGIW.CoreLevel()
	case "die":
		base, v = k.EnergySIMT.DieLevel(), k.EnergyVGIW.DieLevel()
	default:
		base, v = k.EnergySIMT.SystemLevel(), k.EnergyVGIW.SystemLevel()
	}
	return power.Efficiency(base, v)
}

// EnergyEffVsSGMF is Figure 11's metric.
func (k *KernelRun) EnergyEffVsSGMF() float64 {
	if k.SGMF == nil {
		return 0
	}
	return power.Efficiency(k.EnergySGMF.SystemLevel(), k.EnergyVGIW.SystemLevel())
}

// RunOne executes one benchmark on all machines, validating each result.
// Shared artifacts (the workload and the per-architecture compile/place
// products) come from opt's cache when one is set; each machine still runs
// against a private memory image, so results are byte-identical to an
// uncached run.
func RunOne(spec kernels.Spec, opt Options) (*KernelRun, error) {
	return RunOneCtx(context.Background(), spec, opt)
}

// RunOneCtx is RunOne with cooperative cancellation: ctx is threaded into
// every simulator's cycle loop, so a deadline or cancel preempts the run
// mid-simulation and RunOneCtx returns an error wrapping ctx.Err().
func RunOneCtx(ctx context.Context, spec kernels.Spec, opt Options) (*KernelRun, error) {
	start := time.Now()
	cache := opt.effectiveCache()
	out := &KernelRun{Spec: spec}
	if opt.Trace != nil {
		// Route the sweep's sink into every machine configuration (opt is a
		// by-value copy; artifact-cache keys exclude engine options, so a
		// traced run still shares compile/place artifacts).
		opt.VGIW.Engine.Trace = opt.Trace
		opt.SIMT.Trace = opt.Trace
		opt.SGMF.Engine.Trace = opt.Trace
	}

	w, wt, err := cache.workload(spec, opt.Scale)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", spec.Name, err)
	}
	out.Stages.Add(wt)

	// VGIW.
	mv, err := core.NewMachine(opt.VGIW)
	if err != nil {
		return nil, err
	}
	prep, ct, err := cache.vgiwPrepared(w, opt.VGIW)
	if err != nil {
		return nil, fmt.Errorf("%s: vgiw compile: %w", spec.Name, err)
	}
	out.Stages.Add(ct)
	out.Blocks = len(prep.CK.Kernel.Blocks)
	sim0 := time.Now()
	global := w.Global()
	rv, err := mv.RunPreparedCtx(ctx, prep, w.Launch, global)
	if err != nil {
		return nil, fmt.Errorf("%s: vgiw: %w", spec.Name, err)
	}
	if err := w.Check(global); err != nil {
		return nil, fmt.Errorf("%s: vgiw output: %w", spec.Name, err)
	}
	out.Stages.Simulate += time.Since(sim0)
	out.VGIW = rv
	out.EnergyVGIW = power.VGIW(rv, opt.Power)

	// SIMT baseline (compiled without fabric-driven splitting, as a native
	// CUDA compile would be).
	cks, ct2, err := cache.simtCompiled(w)
	if err != nil {
		return nil, fmt.Errorf("%s: simt compile: %w", spec.Name, err)
	}
	out.Stages.Add(ct2)
	sim0 = time.Now()
	global = w.Global()
	rs, err := simt.NewMachine(opt.SIMT).RunCtx(ctx, cks, w.Launch, global)
	if err != nil {
		return nil, fmt.Errorf("%s: simt: %w", spec.Name, err)
	}
	if err := w.Check(global); err != nil {
		return nil, fmt.Errorf("%s: simt output: %w", spec.Name, err)
	}
	out.Stages.Simulate += time.Since(sim0)
	out.SIMT = rs
	out.EnergySIMT = power.SIMT(rs, opt.Power)

	// SGMF, when mappable.
	if spec.SGMF && !opt.SkipSGMF {
		mg, err := sgmf.NewMachine(opt.SGMF)
		if err != nil {
			return nil, err
		}
		mapped, ct3, err := cache.sgmfMapped(w, opt.SGMF)
		if err != nil {
			return nil, fmt.Errorf("%s: sgmf: %w", spec.Name, err)
		}
		out.Stages.Add(ct3)
		sim0 = time.Now()
		global = w.Global()
		rg, err := mg.RunMappedCtx(ctx, mapped, w.Launch, global)
		if err != nil {
			return nil, fmt.Errorf("%s: sgmf: %w", spec.Name, err)
		}
		if err := w.Check(global); err != nil {
			return nil, fmt.Errorf("%s: sgmf output: %w", spec.Name, err)
		}
		out.Stages.Simulate += time.Since(sim0)
		out.SGMF = rg
		out.EnergySGMF = power.SGMF(rg, opt.Power)
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// RunMatrix executes the given kernel specs across the options' worker pool
// (each kernel internally runs on every machine). Runs share immutable
// artifacts through the sweep's cache but build private machines and memory
// images, so the results are identical to a serial (or -no-cache) sweep
// regardless of Parallelism.
//
// A failing kernel does not abort the sweep: RunMatrix returns the runs that
// completed (in spec order) together with the joined per-kernel errors, so
// callers can report which kernels failed and still use the rest.
func RunMatrix(specs []kernels.Spec, opt Options) ([]*KernelRun, error) {
	return RunMatrixCtx(context.Background(), specs, opt)
}

// RunMatrixCtx is RunMatrix with cooperative cancellation: once ctx is done
// the worker pool stops claiming kernels, in-flight runs are preempted inside
// their cycle loops, and the joined error includes ctx.Err() (check with
// errors.Is). Runs that completed before the cancellation are still returned.
func RunMatrixCtx(ctx context.Context, specs []kernels.Spec, opt Options) ([]*KernelRun, error) {
	opt = opt.withSweepCache()
	runs := make([]*KernelRun, len(specs))
	errs := make([]error, len(specs))
	opt.forEach(ctx, len(specs), func(i int) {
		runs[i], errs[i] = RunOneCtx(ctx, specs[i], opt)
	})
	out := make([]*KernelRun, 0, len(specs))
	for _, kr := range runs {
		if kr != nil {
			out = append(out, kr)
		}
	}
	err := errors.Join(errs...)
	if cerr := ctx.Err(); cerr != nil {
		// Kernels the pool never claimed have nil errs entries; surface the
		// cancellation itself exactly once.
		err = errors.Join(err, cerr)
	}
	return out, err
}

// RunAll executes the full registry.
func RunAll(opt Options) ([]*KernelRun, error) {
	return RunMatrix(kernels.All(), opt)
}

// RunAllCtx executes the full registry with cooperative cancellation.
func RunAllCtx(ctx context.Context, opt Options) ([]*KernelRun, error) {
	return RunMatrixCtx(ctx, kernels.All(), opt)
}

// SuiteResult is a full-registry sweep plus host-side performance metadata
// (wall clock, parallelism, allocation count) for the JSON export, so the
// simulator's own performance trajectory is regressable across PRs.
type SuiteResult struct {
	Runs        []*KernelRun
	WallClock   time.Duration
	Parallelism int    // workers actually used
	Mallocs     uint64 // heap allocations during the sweep (process-wide)

	// Stages is the per-stage host wall-clock summed over all runs (like
	// user time: under parallelism it exceeds WallClock). Artifact builds
	// are counted once, in the run that performed them.
	Stages StageTimes
	// Cache is the artifact cache's accounting over this sweep (zero under
	// -no-cache). When the caller shares one cache across several sweeps
	// the counters are deltas for this call.
	Cache CacheStats
	// Metrics is the unified metrics registry folded from every run
	// ("<kernel>/<backend>.<metric>" plus suite-level counters).
	Metrics *trace.Registry
}

// RunSuite executes the full registry and records the sweep's wall-clock
// time, per-stage split, cache accounting, and allocation count.
func RunSuite(opt Options) (*SuiteResult, error) {
	return RunSuiteCtx(context.Background(), opt)
}

// RunSuiteCtx is RunSuite with cooperative cancellation (see RunMatrixCtx
// for the cancellation contract).
func RunSuiteCtx(ctx context.Context, opt Options) (*SuiteResult, error) {
	opt = opt.withSweepCache()
	specs := kernels.All()
	cache := opt.effectiveCache()
	stats0 := cache.Stats()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	runs, err := RunMatrixCtx(ctx, specs, opt)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	out := &SuiteResult{
		Runs:        runs,
		WallClock:   wall,
		Parallelism: opt.workers(len(specs)),
		Mallocs:     m1.Mallocs - m0.Mallocs,
		Cache:       cache.Stats().sub(stats0),
	}
	for _, kr := range runs {
		out.Stages.Add(kr.Stages)
	}
	out.Metrics = CollectMetrics(runs)
	return out, err
}

// Geomean returns the geometric mean of positive values (zeros skipped).
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
