// Package bench is the experiment harness: it runs each benchmark kernel on
// the VGIW machine, the Fermi-like SIMT baseline, and (where mappable) the
// SGMF baseline, validates every run against the host reference, prices the
// runs with the energy model, and computes the metrics behind the paper's
// figures (3, 7, 8, 9, 10, 11) and tables (1, 2).
package bench

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/power"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
)

// Options configures a harness run.
type Options struct {
	Scale int // workload scale factor (1 = default laptop size)
	VGIW  core.Config
	SIMT  simt.Config
	SGMF  sgmf.Config
	Power power.Table
	// SkipSGMF disables the SGMF runs (they re-run the kernel a third time).
	SkipSGMF bool
	// Parallelism caps how many kernel runs execute concurrently. Each run
	// builds its own workload instance, machines, and memory image, so runs
	// share no mutable state and the results are bit-identical to a serial
	// sweep. 0 (the zero value) means runtime.NumCPU(); 1 forces the serial
	// path.
	Parallelism int
}

// DefaultOptions returns the paper's machine configurations.
func DefaultOptions() Options {
	return Options{
		Scale:       1,
		VGIW:        core.DefaultConfig(),
		SIMT:        simt.DefaultConfig(),
		SGMF:        sgmf.DefaultConfig(),
		Power:       power.DefaultTable(),
		Parallelism: runtime.NumCPU(),
	}
}

// workers resolves Parallelism for a sweep of n independent work items.
func (o Options) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(i) for every i in [0,n), fanning the calls across the
// options' worker pool. fn must be safe to call concurrently for distinct i.
func (o Options) forEach(n int, fn func(i int)) {
	w := o.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for ; w > 0; w-- {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// KernelRun holds one benchmark's results on all machines.
type KernelRun struct {
	Spec   kernels.Spec
	Blocks int // block count after VGIW compilation (fabric-fitted)

	VGIW *core.Result
	SIMT *simt.Result
	SGMF *sgmf.Result // nil when the kernel is not SGMF-mappable

	EnergyVGIW power.Breakdown
	EnergySIMT power.Breakdown
	EnergySGMF power.Breakdown // valid when SGMF != nil

	// Elapsed is the wall-clock time this kernel's simulations took (all
	// machines, including validation). It is host timing, not a simulated
	// metric, so determinism checks must ignore it.
	Elapsed time.Duration
}

// Speedup is Figure 7's metric: SIMT cycles / VGIW cycles. A degenerate
// zero-cycle run reports 0 rather than leaking +Inf/NaN into geomeans
// (Geomean skips non-positive values).
func (k *KernelRun) Speedup() float64 {
	if k.VGIW.Cycles == 0 {
		return 0
	}
	return float64(k.SIMT.Cycles) / float64(k.VGIW.Cycles)
}

// SpeedupVsSGMF is Figure 8's metric (0 when SGMF cannot run the kernel or
// the VGIW run is degenerate).
func (k *KernelRun) SpeedupVsSGMF() float64 {
	if k.SGMF == nil || k.VGIW.Cycles == 0 {
		return 0
	}
	return float64(k.SGMF.Cycles) / float64(k.VGIW.Cycles)
}

// LVCOverRF is Figure 3's metric: LVC accesses as a fraction of the
// baseline's register file accesses (both counted per word).
func (k *KernelRun) LVCOverRF() float64 {
	rf := k.SIMT.RFReads + k.SIMT.RFWrites
	if rf == 0 {
		return 0
	}
	return float64(k.VGIW.LVCLoads+k.VGIW.LVCStores) / float64(rf)
}

// EnergyEff is Figures 9/10's metric at system/die/core levels: the paper
// defines efficiency as work/energy, so the ratio over the baseline is
// E_baseline / E_vgiw.
func (k *KernelRun) EnergyEff(level string) float64 {
	var base, v float64
	switch level {
	case "core":
		base, v = k.EnergySIMT.CoreLevel(), k.EnergyVGIW.CoreLevel()
	case "die":
		base, v = k.EnergySIMT.DieLevel(), k.EnergyVGIW.DieLevel()
	default:
		base, v = k.EnergySIMT.SystemLevel(), k.EnergyVGIW.SystemLevel()
	}
	return power.Efficiency(base, v)
}

// EnergyEffVsSGMF is Figure 11's metric.
func (k *KernelRun) EnergyEffVsSGMF() float64 {
	if k.SGMF == nil {
		return 0
	}
	return power.Efficiency(k.EnergySGMF.SystemLevel(), k.EnergyVGIW.SystemLevel())
}

// RunOne executes one benchmark on all machines, validating each result.
func RunOne(spec kernels.Spec, opt Options) (*KernelRun, error) {
	start := time.Now()
	out := &KernelRun{Spec: spec}

	// VGIW.
	inst, err := spec.Build(opt.Scale)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", spec.Name, err)
	}
	mv, err := core.NewMachine(opt.VGIW)
	if err != nil {
		return nil, err
	}
	ck, err := mv.Compile(inst.Kernel)
	if err != nil {
		return nil, fmt.Errorf("%s: vgiw compile: %w", spec.Name, err)
	}
	out.Blocks = len(ck.Kernel.Blocks)
	rv, err := mv.Run(ck, inst.Launch, inst.Global)
	if err != nil {
		return nil, fmt.Errorf("%s: vgiw: %w", spec.Name, err)
	}
	if err := inst.Check(inst.Global); err != nil {
		return nil, fmt.Errorf("%s: vgiw output: %w", spec.Name, err)
	}
	out.VGIW = rv
	out.EnergyVGIW = power.VGIW(rv, opt.Power)

	// SIMT baseline (compiled without fabric-driven splitting, as a native
	// CUDA compile would be).
	inst, err = spec.Build(opt.Scale)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", spec.Name, err)
	}
	cks, err := compile.Compile(inst.Kernel)
	if err != nil {
		return nil, fmt.Errorf("%s: simt compile: %w", spec.Name, err)
	}
	rs, err := simt.NewMachine(opt.SIMT).Run(cks, inst.Launch, inst.Global)
	if err != nil {
		return nil, fmt.Errorf("%s: simt: %w", spec.Name, err)
	}
	if err := inst.Check(inst.Global); err != nil {
		return nil, fmt.Errorf("%s: simt output: %w", spec.Name, err)
	}
	out.SIMT = rs
	out.EnergySIMT = power.SIMT(rs, opt.Power)

	// SGMF, when mappable.
	if spec.SGMF && !opt.SkipSGMF {
		inst, err = spec.Build(opt.Scale)
		if err != nil {
			return nil, fmt.Errorf("%s: build: %w", spec.Name, err)
		}
		mg, err := sgmf.NewMachine(opt.SGMF)
		if err != nil {
			return nil, err
		}
		rg, err := mg.Run(inst.Kernel, inst.Launch, inst.Global)
		if err != nil {
			return nil, fmt.Errorf("%s: sgmf: %w", spec.Name, err)
		}
		if err := inst.Check(inst.Global); err != nil {
			return nil, fmt.Errorf("%s: sgmf output: %w", spec.Name, err)
		}
		out.SGMF = rg
		out.EnergySGMF = power.SGMF(rg, opt.Power)
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// RunMatrix executes the given kernel specs across the options' worker pool
// (each kernel internally runs on every machine). Runs are independent —
// every one builds a fresh workload instance, machines, and memory image —
// so the results are identical to a serial sweep regardless of Parallelism.
//
// A failing kernel does not abort the sweep: RunMatrix returns the runs that
// completed (in spec order) together with the joined per-kernel errors, so
// callers can report which kernels failed and still use the rest.
func RunMatrix(specs []kernels.Spec, opt Options) ([]*KernelRun, error) {
	runs := make([]*KernelRun, len(specs))
	errs := make([]error, len(specs))
	opt.forEach(len(specs), func(i int) {
		runs[i], errs[i] = RunOne(specs[i], opt)
	})
	out := make([]*KernelRun, 0, len(specs))
	for _, kr := range runs {
		if kr != nil {
			out = append(out, kr)
		}
	}
	return out, errors.Join(errs...)
}

// RunAll executes the full registry.
func RunAll(opt Options) ([]*KernelRun, error) {
	return RunMatrix(kernels.All(), opt)
}

// SuiteResult is a full-registry sweep plus host-side performance metadata
// (wall clock, parallelism, allocation count) for the JSON export, so the
// simulator's own performance trajectory is regressable across PRs.
type SuiteResult struct {
	Runs        []*KernelRun
	WallClock   time.Duration
	Parallelism int    // workers actually used
	Mallocs     uint64 // heap allocations during the sweep (process-wide)
}

// RunSuite executes the full registry and records the sweep's wall-clock
// time and allocation count.
func RunSuite(opt Options) (*SuiteResult, error) {
	specs := kernels.All()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	runs, err := RunMatrix(specs, opt)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return &SuiteResult{
		Runs:        runs,
		WallClock:   wall,
		Parallelism: opt.workers(len(specs)),
		Mallocs:     m1.Mallocs - m0.Mallocs,
	}, err
}

// Geomean returns the geometric mean of positive values (zeros skipped).
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
