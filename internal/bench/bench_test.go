package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"vgiw/internal/kernels"
)

// runsOnce caches a full harness run for the shape tests below (the suite
// takes a couple of seconds).
var cachedRuns []*KernelRun

func allRuns(t *testing.T) []*KernelRun {
	t.Helper()
	if cachedRuns == nil {
		runs, err := RunAll(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cachedRuns = runs
	}
	return cachedRuns
}

// TestHarnessValidatesEveryMachine re-checks that RunAll succeeded — RunOne
// verifies every machine's memory image against the host reference, so a
// pass here means all three simulators computed every kernel correctly.
func TestHarnessValidatesEveryMachine(t *testing.T) {
	runs := allRuns(t)
	if len(runs) != len(kernels.All()) {
		t.Fatalf("ran %d kernels, want %d", len(runs), len(kernels.All()))
	}
	sgmfCount := 0
	for _, r := range runs {
		if r.VGIW == nil || r.SIMT == nil {
			t.Fatalf("%s missing machine results", r.Spec.Name)
		}
		if r.SGMF != nil {
			sgmfCount++
		}
	}
	if sgmfCount < 4 {
		t.Errorf("only %d SGMF-mappable kernels, want >= 4 (Figure 8 subset)", sgmfCount)
	}
}

// Figure 7 shape: VGIW wins overall; compute/divergent kernels lead, the
// copy kernel (CFD time_step) trails — the paper's ranking, compressed in
// magnitude (our SIMT baseline is more idealized than GPGPU-Sim's Fermi).
func TestFig7Shape(t *testing.T) {
	runs := allRuns(t)
	var all, compute []float64
	var timeStep, best float64
	for _, r := range runs {
		s := r.Speedup()
		all = append(all, s)
		if r.Spec.Class == kernels.Compute {
			compute = append(compute, s)
		}
		if r.Spec.Name == "cfd.time_step" {
			timeStep = s
		}
		if s > best {
			best = s
		}
	}
	g := Geomean(all)
	if g < 0.85 || g > 6 {
		t.Errorf("overall speedup geomean %.2f outside plausible band [0.85, 6]", g)
	}
	if best < 2 {
		t.Errorf("best kernel speedup %.2f, want >= 2 (paper: up to 11x)", best)
	}
	if timeStep >= g {
		t.Errorf("cfd.time_step (%.2f) should trail the mean (%.2f): the paper's slowdown case", timeStep, g)
	}
	if gc := Geomean(compute); gc < g*0.9 {
		t.Errorf("compute kernels (%.2f) should lead the overall mean (%.2f)", gc, g)
	}
}

// Figure 3 shape: LVC traffic is a small fraction of RF traffic (paper:
// roughly one tenth on average).
func TestFig3Shape(t *testing.T) {
	runs := allRuns(t)
	var ratios []float64
	for _, r := range runs {
		ratio := r.LVCOverRF()
		if ratio > 0.5 {
			t.Errorf("%s: LVC/RF ratio %.2f implausibly high", r.Spec.Name, ratio)
		}
		ratios = append(ratios, ratio)
	}
	if m := mean(ratios); m > 0.25 || m <= 0 {
		t.Errorf("mean LVC/RF ratio %.3f, want (0, 0.25] (paper: ~0.1)", m)
	}
}

// Figure 8/11 shape: VGIW vs SGMF is close to parity on the small mappable
// kernels, with wins on the divergent ones (paper: 1.45x perf, 1.33x energy,
// individual kernels on both sides of 1).
func TestFig8And11Shape(t *testing.T) {
	runs := allRuns(t)
	var sp, eff []float64
	for _, r := range runs {
		if r.SGMF == nil {
			continue
		}
		sp = append(sp, r.SpeedupVsSGMF())
		eff = append(eff, r.EnergyEffVsSGMF())
	}
	if g := Geomean(sp); g < 0.7 || g > 3 {
		t.Errorf("VGIW/SGMF speedup geomean %.2f outside [0.7, 3] (paper: ~1.45)", g)
	}
	if g := Geomean(eff); g < 0.7 || g > 3 {
		t.Errorf("VGIW/SGMF efficiency geomean %.2f outside [0.7, 3] (paper: ~1.33)", g)
	}
}

// Figure 9/10 shape: the energy win concentrates in the core (paper Figure
// 10: core-level ratio exceeds die- and system-level ratios, which is what
// "motivates further research on power efficient memory systems").
func TestFig9And10Shape(t *testing.T) {
	runs := allRuns(t)
	var sys, core []float64
	for _, r := range runs {
		sys = append(sys, r.EnergyEff("system"))
		core = append(core, r.EnergyEff("core"))
	}
	gs, gc := Geomean(sys), Geomean(core)
	if gs < 0.8 || gs > 4 {
		t.Errorf("system-level efficiency geomean %.2f outside [0.8, 4] (paper: 1.75)", gs)
	}
	if gc <= gs {
		t.Errorf("core-level efficiency (%.2f) must exceed system-level (%.2f)", gc, gs)
	}
	if gc < 1.2 {
		t.Errorf("core-level efficiency geomean %.2f, want >= 1.2", gc)
	}
}

// Reconfiguration overhead: small relative to runtime (paper §3.2: 0.18%
// average; our laptop-scale vectors amortize less, so the bound is looser).
func TestReconfigOverheadShape(t *testing.T) {
	runs := allRuns(t)
	var ohs []float64
	for _, r := range runs {
		ohs = append(ohs, r.VGIW.ConfigOverhead())
	}
	if m := mean(ohs); m > 0.10 {
		t.Errorf("mean reconfiguration overhead %.3f, want <= 0.10", m)
	}
	if md := median(ohs); md > 0.05 {
		t.Errorf("median reconfiguration overhead %.3f, want <= 0.05", md)
	}
}

// Tables render without error and contain every kernel.
func TestTablesRender(t *testing.T) {
	runs := allRuns(t)
	opt := DefaultOptions()
	var sb strings.Builder
	tables := []*struct {
		name string
		w    func() error
	}{
		{"table1", func() error { return Table1(opt).Write(&sb) }},
		{"table2", func() error { return Table2(runs).Write(&sb) }},
		{"fig3", func() error { return Fig3(runs).Write(&sb) }},
		{"fig7", func() error { return Fig7(runs).Write(&sb) }},
		{"fig8", func() error { return Fig8(runs).Write(&sb) }},
		{"fig9", func() error { return Fig9(runs).Write(&sb) }},
		{"fig10", func() error { return Fig10(runs).Write(&sb) }},
		{"fig11", func() error { return Fig11(runs).Write(&sb) }},
		{"reconfig", func() error { return ReconfigTable(runs).Write(&sb) }},
		{"util", func() error { return UtilizationTable(runs).Write(&sb) }},
	}
	for _, tb := range tables {
		if err := tb.w(); err != nil {
			t.Fatalf("%s: %v", tb.name, err)
		}
	}
	out := sb.String()
	for _, spec := range kernels.All() {
		if !strings.Contains(out, spec.Name) {
			t.Errorf("tables missing kernel %s", spec.Name)
		}
	}
	if !strings.Contains(out, "GEOMEAN") {
		t.Error("tables missing summary rows")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{0, 4}); g != 4 {
		t.Errorf("zeros must be skipped, got %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("empty geomean = %v", g)
	}
}

func TestJSONExport(t *testing.T) {
	runs := allRuns(t)
	var sb strings.Builder
	if err := WriteJSON(&sb, runs, 1); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(rep.Runs) != len(runs) {
		t.Fatalf("json has %d runs, want %d", len(rep.Runs), len(runs))
	}
	if rep.GeomeanSpeedup <= 0 || rep.GeomeanEffCore <= 0 {
		t.Error("geomeans missing")
	}
	for _, r := range rep.Runs {
		if r.Kernel == "" || r.VGIWCycles <= 0 || r.SIMTCycles <= 0 {
			t.Errorf("incomplete run record: %+v", r)
		}
	}
}
