package bench

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// lvcTestSizes/lvcTestKernels are a small but real slice of the CLI's LVC
// design-space sweep.
var (
	lvcTestSizes   = []int{16, 64, 256}
	lvcTestKernels = []string{"hotspot.kernel", "nw.needle1"}
)

// lvcFingerprint renders an LVC sweep to CSV for byte comparison.
func lvcFingerprint(t *testing.T, opt Options) string {
	t.Helper()
	tab, err := LVCSweep(opt, lvcTestSizes, lvcTestKernels)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestArtifactCacheDeterminism is the tentpole's safety property: a sweep
// served from shared artifacts must be byte-identical to one that rebuilds
// everything per run, serial or parallel. Four full-suite sweeps (cache
// on/off x serial/8 workers) plus the LVC sweep both ways must all agree on
// every simulated figure. Run with -race: the cached sweeps share Workload,
// Prepared, and Mapped values across workers, so this test is also the
// immutability contract's race detector harness.
func TestArtifactCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("four full-suite sweeps")
	}
	sweep := func(noCache bool, parallelism int) string {
		opt := DefaultOptions()
		opt.NoCache = noCache
		opt.Parallelism = parallelism
		runs, err := RunAll(opt)
		if err != nil {
			t.Fatal(err)
		}
		return reportFingerprint(t, runs)
	}
	ref := sweep(true, 1) // uncached serial: the ground truth
	for _, c := range []struct {
		name        string
		noCache     bool
		parallelism int
	}{
		{"cached-serial", false, 1},
		{"cached-parallel8", false, 8},
		{"nocache-parallel8", true, 8},
	} {
		if got := sweep(c.noCache, c.parallelism); got != ref {
			t.Errorf("%s sweep diverged from the uncached serial sweep:\nwant %s\ngot  %s", c.name, ref, got)
		}
	}

	lvcOpt := DefaultOptions()
	lvcOpt.NoCache = true
	lvcOpt.Parallelism = 1
	lvcRef := lvcFingerprint(t, lvcOpt)
	lvcOpt.NoCache = false
	lvcOpt.Parallelism = 8
	if got := lvcFingerprint(t, lvcOpt); got != lvcRef {
		t.Errorf("cached parallel LVC sweep diverged:\nwant %s\ngot  %s", lvcRef, got)
	}
}

// TestLVCSweepCompilesOncePerKernel pins the cache-key derivation: the VGIW
// compile/place artifact's key excludes the LVC capacity, so an LVC sweep
// must miss exactly once per kernel and hit for every remaining size.
func TestLVCSweepCompilesOncePerKernel(t *testing.T) {
	opt := DefaultOptions()
	opt.Parallelism = 4
	opt.Cache = NewArtifactCache()
	if _, err := LVCSweep(opt, lvcTestSizes, lvcTestKernels); err != nil {
		t.Fatal(err)
	}
	stats := opt.Cache.Stats()
	nk, cells := uint64(len(lvcTestKernels)), uint64(len(lvcTestKernels)*len(lvcTestSizes))
	if got := stats.Misses[TierVGIW]; got != nk {
		t.Errorf("TierVGIW misses = %d, want %d (one compile+place per kernel)", got, nk)
	}
	if got := stats.Hits[TierVGIW]; got != cells-nk {
		t.Errorf("TierVGIW hits = %d, want %d (every other cell served from cache)", got, cells-nk)
	}
	if got := stats.Misses[TierWorkload]; got != nk {
		t.Errorf("TierWorkload misses = %d, want %d", got, nk)
	}
	if stats.Build.Compile <= 0 || stats.Build.Place <= 0 {
		t.Errorf("build stage times not recorded: %+v", stats.Build)
	}
}

// TestArtifactCacheSingleflight: concurrent lookups of one key must share a
// single build, with the builder counted as the miss and everyone else as
// hits. Run with -race.
func TestArtifactCacheSingleflight(t *testing.T) {
	c := NewArtifactCache()
	var builds atomic.Int32
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.get("key", TierWorkload, func() (any, StageTimes, error) {
				builds.Add(1)
				return 42, StageTimes{}, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("get = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	stats := c.Stats()
	if stats.Misses[TierWorkload] != 1 || stats.Hits[TierWorkload] != callers-1 {
		t.Errorf("accounting = %d misses / %d hits, want 1 / %d",
			stats.Misses[TierWorkload], stats.Hits[TierWorkload], callers-1)
	}
}

// TestNilCacheBuildsFresh: a nil cache is the -no-cache path — every lookup
// builds, nothing is shared, and Stats stays zero.
func TestNilCacheBuildsFresh(t *testing.T) {
	var c *ArtifactCache
	var builds int
	for i := 0; i < 3; i++ {
		if _, _, err := c.get("key", TierSIMT, func() (any, StageTimes, error) {
			builds++
			return nil, StageTimes{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if builds != 3 {
		t.Errorf("nil cache ran builder %d times, want 3 (no sharing)", builds)
	}
	if s := c.Stats(); s.HitsTotal() != 0 || s.MissesTotal() != 0 {
		t.Errorf("nil cache reported accounting: %+v", s)
	}
}

// BenchmarkSuiteColdVsWarm is the perf guard for the artifact cache: "cold"
// rebuilds every artifact per run (-no-cache), "warm" serves every run from
// a persistent primed cache. The gap between them is the compile/place/
// workload-synthesis cost the cache removes from sweep iteration time.
func BenchmarkSuiteColdVsWarm(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		opt := DefaultOptions()
		opt.NoCache = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunAll(opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		opt := DefaultOptions()
		opt.Cache = NewArtifactCache()
		if _, err := RunAll(opt); err != nil { // prime
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunAll(opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
