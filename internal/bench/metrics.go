package bench

import (
	"sort"
	"strings"

	"vgiw/internal/core"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
	"vgiw/internal/trace"
)

// Metric-name layout: "<kernel>/<backend>.<metric>". The set of metric
// suffixes per backend is fixed (per-class op counters are emitted densely,
// zeros included), so the names a suite produces depend only on the kernel
// registry and which kernels are SGMF-mappable — never on run outcomes. The
// root tracecheck test pins the suffix set against a golden file.

// foldMem folds a memory-system snapshot under prefix ("<kernel>/<backend>.").
func foldMem(reg *trace.Registry, prefix string, ms mem.SystemStats) {
	reg.Set(prefix+"mem.l1.accesses", ms.L1.Accesses())
	reg.Set(prefix+"mem.l1.misses", ms.L1.Misses())
	reg.Set(prefix+"mem.l2.accesses", ms.L2.Accesses())
	reg.Set(prefix+"mem.l2.misses", ms.L2.Misses())
	reg.Set(prefix+"mem.dram.reads", ms.DRAM.Reads)
	reg.Set(prefix+"mem.dram.writes", ms.DRAM.Writes)
}

// foldOps folds a per-unit-class op map densely (every class appears, zeros
// included, so metric names never depend on which ops a kernel happens to use).
func foldOps(reg *trace.Registry, prefix string, ops map[kir.UnitClass]uint64) {
	for c := 0; c < kir.NumUnitClasses; c++ {
		cl := kir.UnitClass(c)
		reg.Set(prefix+"ops."+strings.ToLower(cl.String()), ops[cl])
	}
}

// FoldVGIW folds one VGIW result into the registry under
// "<kernel>/vgiw.". Block-vector shapes (threads per coalesced vector,
// cycles per block run) land in histograms — the distribution is the paper's
// §3.2 story, not just the mean.
func FoldVGIW(reg *trace.Registry, kernel string, r *core.Result) {
	p := kernel + "/vgiw."
	reg.Set(p+"cycles", uint64(r.Cycles))
	reg.Set(p+"tiles", uint64(r.Tiles))
	reg.Set(p+"tile_size", uint64(r.TileSize))
	reg.Set(p+"reconfigs", r.Reconfigs)
	reg.Set(p+"config_cycles", uint64(r.ConfigCycles))
	reg.Set(p+"block_runs", uint64(len(r.BlockRuns)))
	reg.Set(p+"cvt.reads", r.CVTReads)
	reg.Set(p+"cvt.writes", r.CVTWrites)
	reg.Set(p+"lvc.loads", r.LVCLoads)
	reg.Set(p+"lvc.stores", r.LVCStores)
	reg.Set(p+"lvc.accesses", r.LVCStats.Accesses())
	reg.Set(p+"lvc.misses", r.LVCStats.Misses())
	reg.Set(p+"fp_ops", r.FPOps)
	reg.Set(p+"token_hops", r.TokenHops)
	reg.Set(p+"token_transfers", r.TokenTransfers)
	reg.Set(p+"global_accesses", r.GlobalAccesses)
	reg.Set(p+"shared_accesses", r.SharedAccesses)
	foldOps(reg, p, r.Ops)
	foldMem(reg, p, r.MemStats)
	for _, br := range r.BlockRuns {
		reg.Observe(p+"block_threads", int64(br.Threads))
		reg.Observe(p+"block_cycles", br.Cycles)
	}
}

// FoldSIMT folds one SIMT result into the registry under "<kernel>/simt.".
func FoldSIMT(reg *trace.Registry, kernel string, r *simt.Result) {
	p := kernel + "/simt."
	reg.Set(p+"cycles", uint64(r.Cycles))
	reg.Set(p+"warp_instrs", r.WarpInstrs)
	reg.Set(p+"thread_instrs", r.ThreadInstrs)
	reg.Set(p+"masked_lanes", r.MaskedLanes)
	reg.Set(p+"rf.reads", r.RFReads)
	reg.Set(p+"rf.writes", r.RFWrites)
	reg.Set(p+"rf.warp_accesses", r.RFWarpAccesses)
	reg.Set(p+"alu_ops", r.ALUOps)
	reg.Set(p+"fp_ops", r.FPOps)
	reg.Set(p+"sfu_ops", r.SFUOps)
	reg.Set(p+"mem_ops", r.MemOps)
	reg.Set(p+"l1_trans", r.L1Trans)
	reg.Set(p+"sh_trans", r.ShTrans)
	reg.Set(p+"divergences", r.Divergences)
	reg.Set(p+"barriers", r.Barriers)
	foldMem(reg, p, r.MemStats)
}

// FoldSGMF folds one SGMF result into the registry under "<kernel>/sgmf.".
func FoldSGMF(reg *trace.Registry, kernel string, r *sgmf.Result) {
	p := kernel + "/sgmf."
	reg.Set(p+"cycles", uint64(r.Cycles))
	reg.Set(p+"graph_nodes", uint64(r.GraphNodes))
	reg.Set(p+"replicas", uint64(r.Replicas))
	reg.Set(p+"fp_ops", r.FPOps)
	reg.Set(p+"token_hops", r.TokenHops)
	reg.Set(p+"token_transfers", r.TokenTransfers)
	reg.Set(p+"skipped_mem_ops", r.SkippedMemOps)
	reg.Set(p+"global_accesses", r.GlobalAccesses)
	reg.Set(p+"shared_accesses", r.SharedAccesses)
	foldOps(reg, p, r.Ops)
	foldMem(reg, p, r.MemStats)
}

// FoldRun folds one kernel's results (every backend that ran) into the
// registry.
func FoldRun(reg *trace.Registry, kr *KernelRun) {
	name := kr.Spec.Name
	if kr.VGIW != nil {
		FoldVGIW(reg, name, kr.VGIW)
	}
	if kr.SIMT != nil {
		FoldSIMT(reg, name, kr.SIMT)
	}
	if kr.SGMF != nil {
		FoldSGMF(reg, name, kr.SGMF)
	}
}

// CollectMetrics builds a registry from a completed sweep: per-kernel
// per-backend metrics plus suite-level counts.
func CollectMetrics(runs []*KernelRun) *trace.Registry {
	reg := trace.NewRegistry()
	sgmfRuns := uint64(0)
	for _, kr := range runs {
		FoldRun(reg, kr)
		if kr.SGMF != nil {
			sgmfRuns++
		}
	}
	reg.Set("suite/kernels", uint64(len(runs)))
	reg.Set("suite/sgmf_kernels", sgmfRuns)
	return reg
}

// MetricSuffixes extracts the sorted set of distinct metric suffixes (the
// part after "<kernel>/") a registry holds. Kernel names vary with the
// registry; the suffix set is the stable contract the golden test pins.
func MetricSuffixes(reg *trace.Registry) []string {
	seen := map[string]bool{}
	for _, n := range reg.Names() {
		s := n
		if i := strings.IndexByte(n, '/'); i >= 0 {
			s = n[i+1:]
		}
		seen[s] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
