package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"vgiw/internal/trace"
)

// BenchSchema versions the benchmark-trajectory file format
// (BENCH_engine.json). The metrics-snapshot format (BENCH_trace.json) is
// versioned separately by trace.MetricsSchema; LoadBaseline accepts either,
// so regression tooling (cmd/benchgate) consumes both checked-in baselines
// through one loader.
const BenchSchema = "vgiw-bench/v1"

// TrajectoryEntry is one recorded benchmark result: a (commit, bench) point
// on the repo's performance trajectory.
type TrajectoryEntry struct {
	Commit        string  `json:"commit"`
	Date          string  `json:"date"` // YYYY-MM-DD (UTC)
	Bench         string  `json:"bench"`
	NsPerOp       float64 `json:"ns_per_op"`
	ThreadsPerSec float64 `json:"threads_per_sec,omitempty"`
	Note          string  `json:"note,omitempty"`
}

// Trajectory is the schema-versioned envelope of BENCH_engine.json: the full
// benchmark history, oldest first.
type Trajectory struct {
	Schema  string            `json:"schema"`
	Entries []TrajectoryEntry `json:"entries"`
}

// Latest returns the most recent entry recorded under the bench name.
func (t *Trajectory) Latest(bench string) (TrajectoryEntry, bool) {
	for i := len(t.Entries) - 1; i >= 0; i-- {
		if t.Entries[i].Bench == bench {
			return t.Entries[i], true
		}
	}
	return TrajectoryEntry{}, false
}

// Record folds freshly measured results into the trajectory idempotently:
// an existing entry with the same (commit, bench) key is replaced in place —
// re-running `make bench-record` on one commit refines that commit's numbers
// instead of appending duplicates — and new keys append in order.
func (t *Trajectory) Record(results []TrajectoryEntry) {
	t.Schema = BenchSchema
	type key struct{ commit, bench string }
	idx := make(map[key]int, len(t.Entries))
	for i, e := range t.Entries {
		idx[key{e.Commit, e.Bench}] = i // last occurrence wins (legacy dups)
	}
	for _, r := range results {
		k := key{r.Commit, r.Bench}
		if i, ok := idx[k]; ok {
			t.Entries[i] = r
			continue
		}
		idx[k] = len(t.Entries)
		t.Entries = append(t.Entries, r)
	}
}

// Baseline is the unified view of a checked-in performance baseline file.
// Exactly one of Trajectory and Snapshot is non-nil, depending on the file's
// schema header.
type Baseline struct {
	Path       string
	Trajectory *Trajectory     // vgiw-bench/v1 files (BENCH_engine.json)
	Snapshot   *trace.Snapshot // vgiw-metrics/v1 files (BENCH_trace.json)
}

// Kind names the baseline's flavor: "trajectory" or "metrics".
func (b *Baseline) Kind() string {
	if b.Trajectory != nil {
		return "trajectory"
	}
	return "metrics"
}

// Series flattens the baseline into one comparable name → value map: metric
// values for snapshots, the latest ns/op per bench name for trajectories.
func (b *Baseline) Series() map[string]float64 {
	out := map[string]float64{}
	switch {
	case b.Snapshot != nil:
		for name, v := range b.Snapshot.Metrics {
			out[name] = float64(v)
		}
	case b.Trajectory != nil:
		for _, e := range b.Trajectory.Entries {
			out[e.Bench] = e.NsPerOp // entries are oldest-first; last wins
		}
	}
	return out
}

// Validate checks the invariants the checked-in files promise: a known
// schema (established at parse time), at least one data point, and — for
// trajectories — dates that never run backwards (the file is append-order
// history; a date regression means hand-editing broke it).
func (b *Baseline) Validate() error {
	if b.Snapshot != nil {
		if len(b.Snapshot.Metrics) == 0 {
			return fmt.Errorf("%s: metrics snapshot is empty", b.Path)
		}
		return nil
	}
	t := b.Trajectory
	if len(t.Entries) == 0 {
		return fmt.Errorf("%s: trajectory has no entries", b.Path)
	}
	prev := ""
	for i, e := range t.Entries {
		if e.Bench == "" || e.Commit == "" {
			return fmt.Errorf("%s: entry %d: missing bench or commit", b.Path, i)
		}
		if len(e.Date) != len("2006-01-02") {
			return fmt.Errorf("%s: entry %d (%s): bad date %q", b.Path, i, e.Bench, e.Date)
		}
		// ISO dates compare correctly as strings.
		if prev != "" && e.Date < prev {
			return fmt.Errorf("%s: entry %d (%s): date %s precedes %s — trajectory must be monotone in date",
				b.Path, i, e.Bench, e.Date, prev)
		}
		prev = e.Date
	}
	return nil
}

// ParseBaseline sniffs the schema header and parses data as a trajectory or
// a metrics snapshot. Unknown schemas are rejected by name, so a bumped
// format fails loudly instead of comparing garbage.
func ParseBaseline(data []byte, path string) (*Baseline, error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch head.Schema {
	case BenchSchema:
		var t Trajectory
		if err := json.Unmarshal(data, &t); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &Baseline{Path: path, Trajectory: &t}, nil
	case trace.MetricsSchema:
		snap, err := trace.ReadSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &Baseline{Path: path, Snapshot: snap}, nil
	default:
		return nil, fmt.Errorf("%s: unknown baseline schema %q (want %q or %q)",
			path, head.Schema, BenchSchema, trace.MetricsSchema)
	}
}

// LoadBaseline reads and parses one baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBaseline(data, path)
}
