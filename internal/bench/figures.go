package bench

import (
	"context"
	"errors"
	"fmt"

	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/report"
)

// Table1 renders the machine configuration (paper Table 1).
func Table1(opt Options) *report.Table {
	f := opt.VGIW.Fabric
	m := opt.VGIW.Mem
	t := &report.Table{
		Title:   "Table 1: VGIW system configuration",
		Headers: []string{"Parameter", "Value"},
	}
	t.AddRow("VGIW core", fmt.Sprintf("%d interconnected func./LDST/control units", f.Cols*f.Rows))
	t.AddRow("Functional units", fmt.Sprintf("%d combined FPU-ALU units, %d Special Compute units", f.NumALU, f.NumSCU))
	t.AddRow("Load/Store units", fmt.Sprintf("%d Live Value Units, %d regular LDST units", f.NumLVU, f.NumLDST))
	t.AddRow("Control units", fmt.Sprintf("%d Split/Join units, %d Control Vector Units", f.NumSJU, f.NumCVU))
	t.AddRow("L1", fmt.Sprintf("%dKB, %d banks, %dB/line, %d-way, %v",
		m.L1.SizeBytes>>10, m.L1.Banks, m.L1.LineBytes, m.L1.Ways, m.L1.Policy))
	t.AddRow("L2", fmt.Sprintf("%dKB, %d banks, %dB/line, %d-way",
		m.L2.SizeBytes>>10, m.L2.Banks, m.L2.LineBytes, m.L2.Ways))
	t.AddRow("GDDR5 DRAM", fmt.Sprintf("%d banks, %d channels", m.DRAM.Banks, m.DRAM.Channels))
	t.AddRow("LVC", fmt.Sprintf("%dKB, %d banks", opt.VGIW.LVC.SizeBytes>>10, opt.VGIW.LVC.Banks))
	t.AddRow("Reconfiguration", fmt.Sprintf("%d cycles", f.ConfigCycles))
	t.AddRow("Token buffer depth", fmt.Sprintf("%d virtual channels/unit", f.TokenBufDepth))
	return t
}

// Table2 renders the benchmark inventory with measured block counts next to
// the paper's (paper Table 2).
func Table2(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Table 2: benchmark kernels",
		Headers: []string{"App", "Kernel", "Blocks", "Paper", "Class", "SGMF", "Description"},
	}
	for _, r := range runs {
		t.AddRow(r.Spec.App, r.Spec.Name, r.Blocks, r.Spec.PaperBlocks,
			string(r.Spec.Class), yesNo(r.SGMF != nil), r.Spec.Description)
	}
	return t
}

// Fig3 renders LVC accesses as a fraction of RF accesses (paper Figure 3;
// the paper reports an average of roughly one tenth).
func Fig3(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Figure 3: LVC accesses / GPGPU RF accesses",
		Headers: []string{"Kernel", "LVC accesses", "RF accesses", "Ratio"},
	}
	var ratios []float64
	for _, r := range runs {
		ratio := r.LVCOverRF()
		ratios = append(ratios, ratio)
		t.AddRow(r.Spec.Name, r.VGIW.LVCLoads+r.VGIW.LVCStores,
			r.SIMT.RFReads+r.SIMT.RFWrites, ratio)
	}
	t.AddRow("MEAN", "", "", mean(ratios))
	return t
}

// Fig7 renders the speedup of VGIW over the Fermi baseline (paper Figure 7:
// average >3x, range 0.9x-11x).
func Fig7(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Figure 7: speedup of VGIW over Fermi",
		Headers: []string{"Kernel", "Class", "Fermi cycles", "VGIW cycles", "Speedup"},
	}
	var sp []float64
	for _, r := range runs {
		s := r.Speedup()
		sp = append(sp, s)
		t.AddRow(r.Spec.Name, string(r.Spec.Class), r.SIMT.Cycles, r.VGIW.Cycles, s)
	}
	t.AddRow("GEOMEAN", "", "", "", Geomean(sp))
	return t
}

// Fig8 renders the speedup of VGIW over SGMF on the SGMF-mappable subset
// (paper Figure 8: average ~1.45x, range 0.4x-3.1x).
func Fig8(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Figure 8: speedup of VGIW over SGMF (SGMF-mappable kernels)",
		Headers: []string{"Kernel", "SGMF cycles", "VGIW cycles", "Speedup"},
	}
	var sp []float64
	for _, r := range runs {
		if r.SGMF == nil {
			continue
		}
		s := r.SpeedupVsSGMF()
		sp = append(sp, s)
		t.AddRow(r.Spec.Name, r.SGMF.Cycles, r.VGIW.Cycles, s)
	}
	t.AddRow("GEOMEAN", "", "", Geomean(sp))
	return t
}

// Fig9 renders system-level energy efficiency of VGIW over Fermi (paper
// Figure 9: average 1.75x, range 0.7x-7x).
func Fig9(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Figure 9: energy efficiency of VGIW over Fermi (system level)",
		Headers: []string{"Kernel", "Fermi energy (uJ)", "VGIW energy (uJ)", "Efficiency"},
	}
	var eff []float64
	for _, r := range runs {
		e := r.EnergyEff("system")
		eff = append(eff, e)
		t.AddRow(r.Spec.Name, pj2uj(r.EnergySIMT.SystemLevel()), pj2uj(r.EnergyVGIW.SystemLevel()), e)
	}
	t.AddRow("GEOMEAN", "", "", Geomean(eff))
	return t
}

// Fig10 renders the energy-efficiency ratio at system, die and core levels
// (paper Figure 10: the win concentrates in the compute engine).
func Fig10(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Figure 10: VGIW/Fermi energy efficiency by level",
		Headers: []string{"Kernel", "System", "Die", "Core"},
	}
	var sys, die, cor []float64
	for _, r := range runs {
		s, d, c := r.EnergyEff("system"), r.EnergyEff("die"), r.EnergyEff("core")
		sys, die, cor = append(sys, s), append(die, d), append(cor, c)
		t.AddRow(r.Spec.Name, s, d, c)
	}
	t.AddRow("GEOMEAN", Geomean(sys), Geomean(die), Geomean(cor))
	return t
}

// Fig11 renders energy efficiency of VGIW over SGMF (paper Figure 11:
// average ~1.33x).
func Fig11(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Figure 11: energy efficiency of VGIW over SGMF",
		Headers: []string{"Kernel", "SGMF energy (uJ)", "VGIW energy (uJ)", "Efficiency"},
	}
	var eff []float64
	for _, r := range runs {
		if r.SGMF == nil {
			continue
		}
		e := r.EnergyEffVsSGMF()
		eff = append(eff, e)
		t.AddRow(r.Spec.Name, pj2uj(r.EnergySGMF.SystemLevel()), pj2uj(r.EnergyVGIW.SystemLevel()), e)
	}
	t.AddRow("GEOMEAN", "", "", Geomean(eff))
	return t
}

// ReconfigTable renders the reconfiguration overhead statistic of §3.2
// (paper: average 0.18% of runtime, median below 0.1%).
func ReconfigTable(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "Reconfiguration overhead (§3.2)",
		Headers: []string{"Kernel", "Reconfigs", "Config cycles", "Runtime", "Overhead %"},
	}
	var ohs []float64
	for _, r := range runs {
		oh := r.VGIW.ConfigOverhead() * 100
		ohs = append(ohs, oh)
		t.AddRow(r.Spec.Name, r.VGIW.Reconfigs, r.VGIW.ConfigCycles, r.VGIW.Cycles, oh)
	}
	t.AddRow("MEAN", "", "", "", mean(ohs))
	t.AddRow("MEDIAN", "", "", "", median(ohs))
	return t
}

// UtilizationTable is an extra diagnostic: replication factors per kernel.
func UtilizationTable(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title:   "VGIW per-kernel execution profile",
		Headers: []string{"Kernel", "Blocks", "Tiles", "TileSize", "MaxReplicas", "CVT R/W", "LVC hit%"},
	}
	for _, r := range runs {
		maxRep := 0
		for _, rep := range r.VGIW.ReplicasOf {
			if rep > maxRep {
				maxRep = rep
			}
		}
		hitPct := 0.0
		if acc := r.VGIW.LVCStats.Accesses(); acc > 0 {
			hitPct = 100 * float64(acc-r.VGIW.LVCStats.Misses()) / float64(acc)
		}
		t.AddRow(r.Spec.Name, r.Blocks, r.VGIW.Tiles, r.VGIW.TileSize, maxRep,
			fmt.Sprintf("%d/%d", r.VGIW.CVTReads, r.VGIW.CVTWrites), hitPct)
	}
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func pj2uj(pj float64) float64 { return pj / 1e6 }

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// LVCSweep is the LVC design-space exploration the paper omits ("for
// brevity, we do not present a full design space exploration of the LVC size
// and only show results for a 64KB LVC", §3.4): VGIW cycles on the
// live-value-heavy kernels across LVC sizes. The kernel×size cells run
// against private machines and memory images, so the sweep fans out across
// the options' worker pool; the compile/place artifact's cache key excludes
// the LVC capacity, so each kernel is compiled and placed exactly once for
// the whole sweep.
func LVCSweep(opt Options, sizesKB []int, kernelNames []string) (*report.Table, error) {
	opt = opt.withSweepCache()
	specs := make([]kernels.Spec, len(kernelNames))
	for i, name := range kernelNames {
		spec, ok := kernels.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %s", name)
		}
		specs[i] = spec
	}

	nCells := len(specs) * len(sizesKB)
	cycles := make([]int64, nCells)
	errs := make([]error, nCells)
	opt.forEach(context.Background(), nCells, func(cell int) {
		spec, kb := specs[cell/len(sizesKB)], sizesKB[cell%len(sizesKB)]
		cycles[cell], errs[cell] = lvcCell(opt, spec, kb)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "LVC size sweep (extension: §3.4 design space)",
		Headers: append([]string{"Kernel"}, kbHeaders(sizesKB)...),
	}
	for i, spec := range specs {
		row := []any{spec.Name}
		for j := range sizesKB {
			row = append(row, cycles[i*len(sizesKB)+j])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// lvcCell runs one kernel at one LVC size and returns its VGIW cycle count.
// The workload and the compile/place artifact come from the sweep's cache
// (the artifact is LVC-size-independent); only the machine and memory image
// are private to the cell.
func lvcCell(opt Options, spec kernels.Spec, kb int) (int64, error) {
	cfg := opt.VGIW
	cfg.LVC.SizeBytes = kb << 10
	cache := opt.effectiveCache()
	w, _, err := cache.workload(spec, opt.Scale)
	if err != nil {
		return 0, fmt.Errorf("%s: build: %w", spec.Name, err)
	}
	prep, _, err := cache.vgiwPrepared(w, cfg)
	if err != nil {
		return 0, fmt.Errorf("%s @%dKB: %w", spec.Name, kb, err)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return 0, err
	}
	global := w.Global()
	res, err := m.RunPrepared(prep, w.Launch, global)
	if err != nil {
		return 0, fmt.Errorf("%s @%dKB: %w", spec.Name, kb, err)
	}
	if err := w.Check(global); err != nil {
		return 0, fmt.Errorf("%s @%dKB: %w", spec.Name, kb, err)
	}
	return res.Cycles, nil
}

func kbHeaders(sizesKB []int) []string {
	out := make([]string, len(sizesKB))
	for i, kb := range sizesKB {
		out[i] = fmt.Sprintf("%dKB", kb)
	}
	return out
}

// EnergyBreakdown renders the absolute per-component energy of both
// machines for every kernel — the data behind Figure 10's ratios.
func EnergyBreakdown(runs []*KernelRun) *report.Table {
	t := &report.Table{
		Title: "Energy breakdown (uJ): VGIW vs Fermi per component",
		Headers: []string{"Kernel",
			"V.core", "V.L1", "V.L2", "V.MC", "V.DRAM",
			"F.core", "F.L1", "F.L2", "F.MC", "F.DRAM"},
	}
	for _, r := range runs {
		v, f := r.EnergyVGIW, r.EnergySIMT
		t.AddRow(r.Spec.Name,
			pj2uj(v.Core), pj2uj(v.L1), pj2uj(v.L2), pj2uj(v.MC), pj2uj(v.DRAM),
			pj2uj(f.Core), pj2uj(f.L1), pj2uj(f.L2), pj2uj(f.MC), pj2uj(f.DRAM))
	}
	return t
}
