package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"vgiw/internal/kernels"
)

// TestMergeReportMatchesBuildJSON is the merge half of the fleet
// byte-identity contract: per-kernel reports produced independently (as N
// vgiwd workers would), round-tripped through JSON, and merged with
// MergeReport must marshal byte-identically to a single BuildJSON over the
// same runs, once both sides are reduced to their canonical (host-telemetry-
// free) form. The kernel set deliberately includes an SGMF-mappable kernel
// and a non-mappable one, so the SGMF geomean inclusion rule is exercised.
func TestMergeReportMatchesBuildJSON(t *testing.T) {
	names := []string{"bfs.kernel1", "bfs.kernel2"} // kernel2 is SGMF-mappable
	opt := DefaultOptions()
	var runs []*KernelRun
	var rows []JSONRun
	for _, name := range names {
		spec, ok := kernels.ByName(name)
		if !ok {
			t.Fatalf("unknown kernel %q", name)
		}
		kr, err := RunOne(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, kr)

		// One worker's view: a single-run report, serialized and parsed back
		// exactly as the coordinator receives it over HTTP.
		wire, err := json.Marshal(BuildJSON([]*KernelRun{kr}, opt.Scale))
		if err != nil {
			t.Fatal(err)
		}
		var rep JSONReport
		if err := json.Unmarshal(wire, &rep); err != nil {
			t.Fatal(err)
		}
		if len(rep.Runs) != 1 {
			t.Fatalf("single-kernel report has %d runs", len(rep.Runs))
		}
		rows = append(rows, rep.Runs[0])
	}

	local, err := json.Marshal(BuildJSON(runs, opt.Scale).Canonical())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := json.Marshal(MergeReport(rows, opt.Scale).Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, merged) {
		t.Errorf("merged report differs from single-process report:\n%s\nvs\n%s", merged, local)
	}
}

// TestCanonicalStripsHostTelemetry pins that Canonical zeroes every
// host-side field (and only copies, never mutates, the receiver's rows).
func TestCanonicalStripsHostTelemetry(t *testing.T) {
	rep := JSONReport{
		Scale:           2,
		Runs:            []JSONRun{{Kernel: "k", ElapsedMS: 1, InstanceMS: 2, CompileMS: 3, PlaceMS: 4, SimulateMS: 5, VGIWCycles: 77}},
		WallClockMS:     9,
		Parallelism:     8,
		Mallocs:         7,
		StageInstanceMS: 6,
		StageCompileMS:  5,
		StagePlaceMS:    4,
		StageSimulateMS: 3,
		CacheHits:       2,
		CacheMisses:     1,
	}
	c := rep.Canonical()
	if c.WallClockMS != 0 || c.Parallelism != 0 || c.Mallocs != 0 ||
		c.StageInstanceMS != 0 || c.StageCompileMS != 0 || c.StagePlaceMS != 0 || c.StageSimulateMS != 0 ||
		c.CacheHits != 0 || c.CacheMisses != 0 {
		t.Errorf("report-level telemetry survived Canonical: %+v", c)
	}
	if r := c.Runs[0]; r.ElapsedMS != 0 || r.InstanceMS != 0 || r.CompileMS != 0 || r.PlaceMS != 0 || r.SimulateMS != 0 {
		t.Errorf("run-level telemetry survived Canonical: %+v", r)
	}
	if c.Runs[0].VGIWCycles != 77 || c.Scale != 2 {
		t.Errorf("Canonical damaged simulated content: %+v", c)
	}
	if rep.Runs[0].ElapsedMS != 1 {
		t.Errorf("Canonical mutated the receiver's rows: %+v", rep.Runs[0])
	}
}
