package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/simt"
)

// reportFingerprint renders a run set to the JSON export form with the
// host-timing fields cleared, so two sweeps can be compared bit-for-bit on
// simulated results only.
func reportFingerprint(t *testing.T, runs []*KernelRun) string {
	t.Helper()
	rep := BuildJSON(runs, 1)
	for i := range rep.Runs {
		rep.Runs[i].ElapsedMS = 0
		rep.Runs[i].InstanceMS = 0
		rep.Runs[i].CompileMS = 0
		rep.Runs[i].PlaceMS = 0
		rep.Runs[i].SimulateMS = 0
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelDeterminism is the harness's core safety property: a parallel
// sweep must be indistinguishable from a serial one. Every kernel run builds
// its own instance, machines, and memory image, so an 8-worker sweep and a
// serial sweep must produce byte-identical exports (host timing aside).
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	serial := DefaultOptions()
	serial.Parallelism = 1
	sRuns, err := RunAll(serial)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultOptions()
	par.Parallelism = 8
	pRuns, err := RunAll(par)
	if err != nil {
		t.Fatal(err)
	}
	sFP, pFP := reportFingerprint(t, sRuns), reportFingerprint(t, pRuns)
	if sFP != pFP {
		t.Errorf("parallel sweep diverged from serial sweep:\nserial:   %s\nparallel: %s", sFP, pFP)
	}
}

// TestRunMatrixPartialFailure: a failing kernel must not discard the rest of
// the sweep. RunMatrix returns the completed runs in spec order together
// with every failure joined into one error.
func TestRunMatrixPartialFailure(t *testing.T) {
	all := kernels.All()
	boom := kernels.Spec{
		Name: "broken.kernel",
		Build: func(scale int) (*kernels.Instance, error) {
			return nil, fmt.Errorf("synthetic build failure")
		},
	}
	bang := kernels.Spec{
		Name: "broken.kernel2",
		Build: func(scale int) (*kernels.Instance, error) {
			return nil, errors.New("second synthetic failure")
		},
	}
	specs := []kernels.Spec{all[0], boom, all[1], bang}
	opt := DefaultOptions()
	opt.Parallelism = 4
	runs, err := RunMatrix(specs, opt)
	if err == nil {
		t.Fatal("RunMatrix returned nil error despite two failing kernels")
	}
	if len(runs) != 2 {
		t.Fatalf("got %d completed runs, want 2 (partial results must survive)", len(runs))
	}
	if runs[0].Spec.Name != all[0].Name || runs[1].Spec.Name != all[1].Name {
		t.Errorf("completed runs out of spec order: %s, %s", runs[0].Spec.Name, runs[1].Spec.Name)
	}
	msg := err.Error()
	for _, want := range []string{"synthetic build failure", "second synthetic failure"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// Degenerate zero-cycle results must report 0, not +Inf/NaN — Geomean skips
// non-positive values, so a 0 drops out of the headline numbers cleanly.
func TestMetricsZeroGuards(t *testing.T) {
	k := &KernelRun{
		VGIW: &core.Result{},
		SIMT: &simt.Result{Cycles: 100},
	}
	if s := k.Speedup(); s != 0 {
		t.Errorf("Speedup with zero VGIW cycles = %v, want 0", s)
	}
	if s := k.SpeedupVsSGMF(); s != 0 {
		t.Errorf("SpeedupVsSGMF with nil SGMF = %v, want 0", s)
	}
	if v := k.LVCOverRF(); v != 0 {
		t.Errorf("LVCOverRF with zero RF accesses = %v, want 0", v)
	}
	if g := Geomean([]float64{0, 2, 8}); g != 4 {
		t.Errorf("Geomean skipping zeros = %v, want 4", g)
	}
}

// TestWorkersResolution pins the Parallelism resolution rules the CLIs
// depend on: 0 means NumCPU, and the worker count never exceeds the number
// of work items nor drops below 1.
func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		parallelism, n, want int
	}{
		{0, 100, runtime.NumCPU()},
		{1, 100, 1},
		{8, 3, 3},
		{-5, 100, runtime.NumCPU()},
		{4, 0, 1},
	}
	for _, c := range cases {
		o := Options{Parallelism: c.parallelism}
		if got := o.workers(c.n); got != c.want {
			t.Errorf("workers(Parallelism=%d, n=%d) = %d, want %d", c.parallelism, c.n, got, c.want)
		}
	}
}

// BenchmarkRunAllParallel measures the full-suite sweep with the default
// worker count; compare against BenchmarkRunAllSerial for the wall-clock
// win on multi-core hosts.
func BenchmarkRunAllParallel(b *testing.B) {
	opt := DefaultOptions()
	opt.Parallelism = runtime.NumCPU()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunAll(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllSerial(b *testing.B) {
	opt := DefaultOptions()
	opt.Parallelism = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunAll(opt); err != nil {
			b.Fatal(err)
		}
	}
}
