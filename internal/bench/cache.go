package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/fabric"
	"vgiw/internal/kernels"
	"vgiw/internal/sgmf"
)

// Tier identifies an artifact class for the cache's hit/miss accounting.
type Tier int

const (
	// TierWorkload: kernels.Workload (kernel IR build + input synthesis).
	TierWorkload Tier = iota
	// TierVGIW: VGIW compile + fabric place & route (core.Prepared).
	TierVGIW
	// TierSIMT: baseline compile without fabric fitting (CompiledKernel).
	TierSIMT
	// TierSGMF: schedule/unroll/if-convert + whole-kernel place (Mapped).
	TierSGMF

	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierWorkload:
		return "workload"
	case TierVGIW:
		return "vgiw"
	case TierSIMT:
		return "simt"
	case TierSGMF:
		return "sgmf"
	}
	return "unknown"
}

// StageTimes splits harness host wall-clock by pipeline stage. Durations are
// summed across workers (like user time), so under parallelism they can
// exceed the sweep's wall clock. They are host telemetry, not simulated
// metrics — determinism checks must ignore them.
type StageTimes struct {
	Instance time.Duration // kernel IR build + input/memory-image synthesis
	Compile  time.Duration // compile.Compile/CompileFitted + SGMF translate
	Place    time.Duration // fabric place & route
	Simulate time.Duration // machine execution + output validation
}

// Add accumulates another sample into the receiver.
func (s *StageTimes) Add(o StageTimes) {
	s.Instance += o.Instance
	s.Compile += o.Compile
	s.Place += o.Place
	s.Simulate += o.Simulate
}

// CacheStats is a point-in-time snapshot of the cache's accounting: per-tier
// hit/miss counters plus the build time spent on misses, split by stage.
type CacheStats struct {
	Hits, Misses [numTiers]uint64
	// Build is the artifact construction time paid on misses (the cost the
	// hits avoided re-paying).
	Build StageTimes
}

// HitsTotal sums hits across tiers.
func (s CacheStats) HitsTotal() uint64 {
	var n uint64
	for _, h := range s.Hits {
		n += h
	}
	return n
}

// MissesTotal sums misses across tiers.
func (s CacheStats) MissesTotal() uint64 {
	var n uint64
	for _, m := range s.Misses {
		n += m
	}
	return n
}

// sub returns the delta s - earlier, so callers sharing one cache across
// several sweeps can report per-sweep accounting.
func (s CacheStats) sub(earlier CacheStats) CacheStats {
	for t := Tier(0); t < numTiers; t++ {
		s.Hits[t] -= earlier.Hits[t]
		s.Misses[t] -= earlier.Misses[t]
	}
	s.Build.Instance -= earlier.Build.Instance
	s.Build.Compile -= earlier.Build.Compile
	s.Build.Place -= earlier.Build.Place
	s.Build.Simulate -= earlier.Build.Simulate
	return s
}

// ArtifactCache is a content-keyed, concurrency-safe artifact cache shared
// across the harness worker pool. Keys embed the kernel identity (registry
// name + scale) plus only the configuration fields that actually affect the
// artifact — a VGIW compile/place artifact is keyed by the fabric shape and
// split options but not by LVC capacity, so an LVC design-space sweep
// compiles and places each kernel exactly once.
//
// Values are immutable shared artifacts (see kernels.Workload,
// core.Prepared, sgmf.Mapped for the per-type contracts); concurrent lookups
// of the same key share a single build (duplicate suppression), and later
// callers count as hits.
//
// A nil *ArtifactCache is valid and means "no sharing": every lookup builds
// a fresh artifact, which is the -no-cache escape hatch. Results are
// byte-identical either way — the builders are deterministic and runs only
// ever mutate private copies.
type ArtifactCache struct {
	mu      sync.Mutex
	entries map[any]*cacheEntry

	hits, misses [numTiers]atomic.Uint64
	buildNS      [4]atomic.Int64 // instance/compile/place indices; simulate unused
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewArtifactCache creates an empty cache.
func NewArtifactCache() *ArtifactCache {
	return &ArtifactCache{entries: make(map[any]*cacheEntry)}
}

// Stats snapshots the accounting counters.
func (c *ArtifactCache) Stats() CacheStats {
	var s CacheStats
	if c == nil {
		return s
	}
	for t := Tier(0); t < numTiers; t++ {
		s.Hits[t] = c.hits[t].Load()
		s.Misses[t] = c.misses[t].Load()
	}
	s.Build.Instance = time.Duration(c.buildNS[0].Load())
	s.Build.Compile = time.Duration(c.buildNS[1].Load())
	s.Build.Place = time.Duration(c.buildNS[2].Load())
	return s
}

// get resolves key, building at most once per key across all workers. It
// reports the artifact, the build's stage times (zero for hits: the caller
// paid nothing), and whether this caller performed the build.
func (c *ArtifactCache) get(key any, tier Tier, build func() (any, StageTimes, error)) (any, StageTimes, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	var built bool
	var st StageTimes
	e.once.Do(func() {
		built = true
		e.val, st, e.err = build()
	})
	if built {
		c.misses[tier].Add(1)
		c.buildNS[0].Add(int64(st.Instance))
		c.buildNS[1].Add(int64(st.Compile))
		c.buildNS[2].Add(int64(st.Place))
		return e.val, st, e.err
	}
	c.hits[tier].Add(1)
	return e.val, StageTimes{}, e.err
}

// Cache keys. All components are comparable value types, so the key IS the
// content that determines the artifact: identical configurations collide
// into one entry, different ones cannot.
type (
	workloadKey struct {
		name  string
		scale int
	}
	vgiwKey struct {
		name           string
		scale          int
		fabric         fabric.Config
		replicationOff bool
		split          bool
		checked        bool
	}
	simtKey struct {
		name  string
		scale int
	}
	sgmfKey struct {
		name    string
		scale   int
		fabric  fabric.Config
		checked bool
	}
)

// workload resolves the tier-2 artifact: one Spec.Build per (kernel, scale).
func (c *ArtifactCache) workload(spec kernels.Spec, scale int) (*kernels.Workload, StageTimes, error) {
	v, st, err := c.get(workloadKey{spec.Name, scale}, TierWorkload, func() (any, StageTimes, error) {
		t0 := time.Now()
		w, err := kernels.NewWorkload(spec, scale)
		return w, StageTimes{Instance: time.Since(t0)}, err
	})
	if err != nil {
		return nil, st, err
	}
	return v.(*kernels.Workload), st, nil
}

// vgiwPrepared resolves the VGIW compile/place artifact. The key carries
// only the config fields placement depends on — fabric shape and split
// options — so sweeps over LVC/CVT/memory parameters share one artifact.
func (c *ArtifactCache) vgiwPrepared(w *kernels.Workload, cfg core.Config) (*core.Prepared, StageTimes, error) {
	key := vgiwKey{w.Spec.Name, w.Scale, cfg.Fabric, cfg.ReplicationOff, cfg.SplitForThroughput, cfg.Checked}
	v, st, err := c.get(key, TierVGIW, func() (any, StageTimes, error) {
		var st StageTimes
		m, err := core.NewMachine(cfg)
		if err != nil {
			return nil, st, err
		}
		t0 := time.Now()
		ck, err := m.Compile(w.Kernel())
		st.Compile = time.Since(t0)
		if err != nil {
			return nil, st, err
		}
		t0 = time.Now()
		prep, err := m.Prepare(ck)
		st.Place = time.Since(t0)
		return prep, st, err
	})
	if err != nil {
		return nil, st, err
	}
	return v.(*core.Prepared), st, nil
}

// simtCompiled resolves the baseline's compile artifact (no fabric fitting,
// as a native CUDA compile would be; no machine-config dependence at all).
func (c *ArtifactCache) simtCompiled(w *kernels.Workload) (*compile.CompiledKernel, StageTimes, error) {
	v, st, err := c.get(simtKey{w.Spec.Name, w.Scale}, TierSIMT, func() (any, StageTimes, error) {
		t0 := time.Now()
		ck, err := compile.Compile(w.Kernel())
		return ck, StageTimes{Compile: time.Since(t0)}, err
	})
	if err != nil {
		return nil, st, err
	}
	return v.(*compile.CompiledKernel), st, nil
}

// sgmfMapped resolves SGMF's compile/place artifact.
func (c *ArtifactCache) sgmfMapped(w *kernels.Workload, cfg sgmf.Config) (*sgmf.Mapped, StageTimes, error) {
	v, st, err := c.get(sgmfKey{w.Spec.Name, w.Scale, cfg.Fabric, cfg.Checked}, TierSGMF, func() (any, StageTimes, error) {
		var st StageTimes
		m, err := sgmf.NewMachine(cfg)
		if err != nil {
			return nil, st, err
		}
		k := w.Kernel()
		t0 := time.Now()
		g, err := m.Translate(k)
		st.Compile = time.Since(t0)
		if err != nil {
			return nil, st, err
		}
		t0 = time.Now()
		p, err := m.PlaceGraph(k.Name, g)
		st.Place = time.Since(t0)
		if err != nil {
			return nil, st, err
		}
		return &sgmf.Mapped{Kernel: k, Placement: p}, st, nil
	})
	if err != nil {
		return nil, st, err
	}
	return v.(*sgmf.Mapped), st, nil
}
