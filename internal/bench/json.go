package bench

import (
	"encoding/json"
	"io"
)

// JSONRun is the machine-readable form of one benchmark's results.
type JSONRun struct {
	Kernel      string `json:"kernel"`
	App         string `json:"app"`
	Class       string `json:"class"`
	Blocks      int    `json:"blocks"`
	PaperBlocks int    `json:"paper_blocks"`
	Threads     int    `json:"threads"`

	VGIWCycles int64 `json:"vgiw_cycles"`
	SIMTCycles int64 `json:"simt_cycles"`
	SGMFCycles int64 `json:"sgmf_cycles,omitempty"`

	Speedup       float64 `json:"speedup_vs_fermi"`
	SpeedupVsSGMF float64 `json:"speedup_vs_sgmf,omitempty"`
	LVCOverRF     float64 `json:"lvc_over_rf"`
	EffSystem     float64 `json:"energy_eff_system"`
	EffDie        float64 `json:"energy_eff_die"`
	EffCore       float64 `json:"energy_eff_core"`
	EffVsSGMF     float64 `json:"energy_eff_vs_sgmf,omitempty"`
	ReconfigShare float64 `json:"reconfig_share"`
	Reconfigs     uint64  `json:"reconfigs"`
	LVCAccesses   uint64  `json:"lvc_accesses"`
	RFAccesses    uint64  `json:"rf_accesses"`
	EnergyVGIWPJ  float64 `json:"energy_vgiw_pj"`
	EnergyFermiPJ float64 `json:"energy_fermi_pj"`

	// ElapsedMS is host wall-clock time for this kernel's simulations —
	// simulator performance telemetry, not a simulated metric.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// JSONReport bundles the whole suite plus the headline geomeans and, when
// produced from a SuiteResult, the harness's own performance telemetry
// (wall clock, parallelism, allocations) so future optimization PRs have a
// trajectory to regress against.
type JSONReport struct {
	Scale int       `json:"scale"`
	Runs  []JSONRun `json:"runs"`

	GeomeanSpeedup   float64 `json:"geomean_speedup"`
	GeomeanEffSystem float64 `json:"geomean_eff_system"`
	GeomeanEffCore   float64 `json:"geomean_eff_core"`
	GeomeanVsSGMF    float64 `json:"geomean_speedup_vs_sgmf"`
	MeanLVCOverRF    float64 `json:"mean_lvc_over_rf"`

	// Harness telemetry (host-side, omitted by the plain BuildJSON path).
	WallClockMS float64 `json:"wall_clock_ms,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
	Mallocs     uint64  `json:"mallocs,omitempty"`
}

// BuildJSON converts harness results into the export form.
func BuildJSON(runs []*KernelRun, scale int) JSONReport {
	rep := JSONReport{Scale: scale}
	var sp, effS, effC, spSGMF, lvc []float64
	for _, r := range runs {
		jr := JSONRun{
			Kernel:        r.Spec.Name,
			App:           r.Spec.App,
			Class:         string(r.Spec.Class),
			Blocks:        r.Blocks,
			PaperBlocks:   r.Spec.PaperBlocks,
			Threads:       r.VGIW.Threads,
			VGIWCycles:    r.VGIW.Cycles,
			SIMTCycles:    r.SIMT.Cycles,
			Speedup:       r.Speedup(),
			LVCOverRF:     r.LVCOverRF(),
			EffSystem:     r.EnergyEff("system"),
			EffDie:        r.EnergyEff("die"),
			EffCore:       r.EnergyEff("core"),
			ReconfigShare: r.VGIW.ConfigOverhead(),
			Reconfigs:     r.VGIW.Reconfigs,
			LVCAccesses:   r.VGIW.LVCLoads + r.VGIW.LVCStores,
			RFAccesses:    r.SIMT.RFReads + r.SIMT.RFWrites,
			EnergyVGIWPJ:  r.EnergyVGIW.SystemLevel(),
			EnergyFermiPJ: r.EnergySIMT.SystemLevel(),
		}
		jr.ElapsedMS = float64(r.Elapsed.Microseconds()) / 1e3
		if r.SGMF != nil {
			jr.SGMFCycles = r.SGMF.Cycles
			jr.SpeedupVsSGMF = r.SpeedupVsSGMF()
			jr.EffVsSGMF = r.EnergyEffVsSGMF()
			spSGMF = append(spSGMF, jr.SpeedupVsSGMF)
		}
		sp = append(sp, jr.Speedup)
		effS = append(effS, jr.EffSystem)
		effC = append(effC, jr.EffCore)
		lvc = append(lvc, jr.LVCOverRF)
		rep.Runs = append(rep.Runs, jr)
	}
	rep.GeomeanSpeedup = Geomean(sp)
	rep.GeomeanEffSystem = Geomean(effS)
	rep.GeomeanEffCore = Geomean(effC)
	rep.GeomeanVsSGMF = Geomean(spSGMF)
	rep.MeanLVCOverRF = mean(lvc)
	return rep
}

// WriteJSON emits the report as indented JSON.
func WriteJSON(w io.Writer, runs []*KernelRun, scale int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(runs, scale))
}

// Report converts a suite sweep to the export form, including the harness
// telemetry fields.
func (s *SuiteResult) Report(scale int) JSONReport {
	rep := BuildJSON(s.Runs, scale)
	rep.WallClockMS = float64(s.WallClock.Microseconds()) / 1e3
	rep.Parallelism = s.Parallelism
	rep.Mallocs = s.Mallocs
	return rep
}

// WriteJSON emits the suite report (with telemetry) as indented JSON.
func (s *SuiteResult) WriteJSON(w io.Writer, scale int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Report(scale))
}
