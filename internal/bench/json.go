package bench

import (
	"encoding/json"
	"io"
	"time"

	"vgiw/internal/trace"
)

// JSONRun is the machine-readable form of one benchmark's results.
type JSONRun struct {
	Kernel      string `json:"kernel"`
	App         string `json:"app"`
	Class       string `json:"class"`
	Blocks      int    `json:"blocks"`
	PaperBlocks int    `json:"paper_blocks"`
	Threads     int    `json:"threads"`

	VGIWCycles int64 `json:"vgiw_cycles"`
	SIMTCycles int64 `json:"simt_cycles"`
	SGMFCycles int64 `json:"sgmf_cycles,omitempty"`

	Speedup       float64 `json:"speedup_vs_fermi"`
	SpeedupVsSGMF float64 `json:"speedup_vs_sgmf,omitempty"`
	LVCOverRF     float64 `json:"lvc_over_rf"`
	EffSystem     float64 `json:"energy_eff_system"`
	EffDie        float64 `json:"energy_eff_die"`
	EffCore       float64 `json:"energy_eff_core"`
	EffVsSGMF     float64 `json:"energy_eff_vs_sgmf,omitempty"`
	ReconfigShare float64 `json:"reconfig_share"`
	Reconfigs     uint64  `json:"reconfigs"`
	LVCAccesses   uint64  `json:"lvc_accesses"`
	RFAccesses    uint64  `json:"rf_accesses"`
	EnergyVGIWPJ  float64 `json:"energy_vgiw_pj"`
	EnergyFermiPJ float64 `json:"energy_fermi_pj"`

	// ElapsedMS is host wall-clock time for this kernel's simulations —
	// simulator performance telemetry, not a simulated metric. The stage
	// fields split it by pipeline stage; artifact-build stages (instance,
	// compile, place) are attributed to the run that built the shared
	// artifact, so cache-served runs report (near) zero there.
	ElapsedMS  float64 `json:"elapsed_ms,omitempty"`
	InstanceMS float64 `json:"instance_ms,omitempty"`
	CompileMS  float64 `json:"compile_ms,omitempty"`
	PlaceMS    float64 `json:"place_ms,omitempty"`
	SimulateMS float64 `json:"simulate_ms,omitempty"`
}

// JSONReport bundles the whole suite plus the headline geomeans and, when
// produced from a SuiteResult, the harness's own performance telemetry
// (wall clock, parallelism, allocations) so future optimization PRs have a
// trajectory to regress against.
type JSONReport struct {
	Scale int       `json:"scale"`
	Runs  []JSONRun `json:"runs"`

	GeomeanSpeedup   float64 `json:"geomean_speedup"`
	GeomeanEffSystem float64 `json:"geomean_eff_system"`
	GeomeanEffCore   float64 `json:"geomean_eff_core"`
	GeomeanVsSGMF    float64 `json:"geomean_speedup_vs_sgmf"`
	MeanLVCOverRF    float64 `json:"mean_lvc_over_rf"`

	// Harness telemetry (host-side, omitted by the plain BuildJSON path).
	WallClockMS float64 `json:"wall_clock_ms,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
	Mallocs     uint64  `json:"mallocs,omitempty"`

	// Per-stage host time summed over all runs (user time: can exceed
	// wall clock under parallelism).
	StageInstanceMS float64 `json:"stage_instance_ms,omitempty"`
	StageCompileMS  float64 `json:"stage_compile_ms,omitempty"`
	StagePlaceMS    float64 `json:"stage_place_ms,omitempty"`
	StageSimulateMS float64 `json:"stage_simulate_ms,omitempty"`

	// Artifact-cache accounting for the sweep (absent under -no-cache).
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`

	// Metrics is the unified registry flattened to name -> value
	// ("<kernel>/<backend>.<metric>"; histograms expand to
	// .count/.sum/.min/.max/.mean_x1000). Present on suite reports.
	MetricsSchema string            `json:"metrics_schema,omitempty"`
	Metrics       map[string]uint64 `json:"metrics,omitempty"`
}

// BuildJSON converts harness results into the export form.
func BuildJSON(runs []*KernelRun, scale int) JSONReport {
	rep := JSONReport{Scale: scale}
	var sp, effS, effC, spSGMF, lvc []float64
	for _, r := range runs {
		jr := JSONRun{
			Kernel:        r.Spec.Name,
			App:           r.Spec.App,
			Class:         string(r.Spec.Class),
			Blocks:        r.Blocks,
			PaperBlocks:   r.Spec.PaperBlocks,
			Threads:       r.VGIW.Threads,
			VGIWCycles:    r.VGIW.Cycles,
			SIMTCycles:    r.SIMT.Cycles,
			Speedup:       r.Speedup(),
			LVCOverRF:     r.LVCOverRF(),
			EffSystem:     r.EnergyEff("system"),
			EffDie:        r.EnergyEff("die"),
			EffCore:       r.EnergyEff("core"),
			ReconfigShare: r.VGIW.ConfigOverhead(),
			Reconfigs:     r.VGIW.Reconfigs,
			LVCAccesses:   r.VGIW.LVCLoads + r.VGIW.LVCStores,
			RFAccesses:    r.SIMT.RFReads + r.SIMT.RFWrites,
			EnergyVGIWPJ:  r.EnergyVGIW.SystemLevel(),
			EnergyFermiPJ: r.EnergySIMT.SystemLevel(),
		}
		jr.ElapsedMS = float64(r.Elapsed.Microseconds()) / 1e3
		jr.InstanceMS = durMS(r.Stages.Instance)
		jr.CompileMS = durMS(r.Stages.Compile)
		jr.PlaceMS = durMS(r.Stages.Place)
		jr.SimulateMS = durMS(r.Stages.Simulate)
		if r.SGMF != nil {
			jr.SGMFCycles = r.SGMF.Cycles
			jr.SpeedupVsSGMF = r.SpeedupVsSGMF()
			jr.EffVsSGMF = r.EnergyEffVsSGMF()
			spSGMF = append(spSGMF, jr.SpeedupVsSGMF)
		}
		sp = append(sp, jr.Speedup)
		effS = append(effS, jr.EffSystem)
		effC = append(effC, jr.EffCore)
		lvc = append(lvc, jr.LVCOverRF)
		rep.Runs = append(rep.Runs, jr)
	}
	rep.GeomeanSpeedup = Geomean(sp)
	rep.GeomeanEffSystem = Geomean(effS)
	rep.GeomeanEffCore = Geomean(effC)
	rep.GeomeanVsSGMF = Geomean(spSGMF)
	rep.MeanLVCOverRF = mean(lvc)
	return rep
}

// WriteJSON emits the report as indented JSON.
func WriteJSON(w io.Writer, runs []*KernelRun, scale int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(runs, scale))
}

// Report converts a suite sweep to the export form, including the harness
// telemetry fields.
func (s *SuiteResult) Report(scale int) JSONReport {
	rep := BuildJSON(s.Runs, scale)
	rep.WallClockMS = float64(s.WallClock.Microseconds()) / 1e3
	rep.Parallelism = s.Parallelism
	rep.Mallocs = s.Mallocs
	rep.StageInstanceMS = durMS(s.Stages.Instance)
	rep.StageCompileMS = durMS(s.Stages.Compile)
	rep.StagePlaceMS = durMS(s.Stages.Place)
	rep.StageSimulateMS = durMS(s.Stages.Simulate)
	rep.CacheHits = s.Cache.HitsTotal()
	rep.CacheMisses = s.Cache.MissesTotal()
	if s.Metrics != nil {
		rep.MetricsSchema = trace.MetricsSchema
		rep.Metrics = s.Metrics.Flat()
	}
	return rep
}

// durMS renders a host duration in milliseconds with microsecond precision.
func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// MergeReport rebuilds a suite-level report from per-kernel JSONRun rows —
// the fleet coordinator's half of BuildJSON. The rows typically arrive as
// single-run reports from N vgiwd workers; merging them in matrix order and
// recomputing the geomeans here yields a report whose simulated content is
// byte-identical to a single-process BuildJSON over the same runs: the row
// floats round-trip exactly through JSON, and the geomean inclusion rules
// below mirror BuildJSON's (every run contributes to the Fermi-relative
// aggregates; the SGMF aggregate takes runs that executed on SGMF, and
// Geomean skips non-positive values either way).
func MergeReport(runs []JSONRun, scale int) JSONReport {
	rep := JSONReport{Scale: scale, Runs: runs}
	var sp, effS, effC, spSGMF, lvc []float64
	for _, jr := range runs {
		if jr.SGMFCycles != 0 {
			spSGMF = append(spSGMF, jr.SpeedupVsSGMF)
		}
		sp = append(sp, jr.Speedup)
		effS = append(effS, jr.EffSystem)
		effC = append(effC, jr.EffCore)
		lvc = append(lvc, jr.LVCOverRF)
	}
	rep.GeomeanSpeedup = Geomean(sp)
	rep.GeomeanEffSystem = Geomean(effS)
	rep.GeomeanEffCore = Geomean(effC)
	rep.GeomeanVsSGMF = Geomean(spSGMF)
	rep.MeanLVCOverRF = mean(lvc)
	return rep
}

// Canonical returns a copy of the report with every host-side telemetry
// field zeroed: wall clock, per-stage splits, allocation counts, cache
// accounting, and the per-run elapsed/stage timings. What remains is exactly
// the simulated content, which is deterministic — so two canonical reports
// over the same matrix are byte-identical regardless of which host (or how
// many fleet workers) produced the runs. The determinism tests and the fleet
// byte-identity gate compare canonical forms.
func (r JSONReport) Canonical() JSONReport {
	r.WallClockMS = 0
	r.Parallelism = 0
	r.Mallocs = 0
	r.StageInstanceMS = 0
	r.StageCompileMS = 0
	r.StagePlaceMS = 0
	r.StageSimulateMS = 0
	r.CacheHits = 0
	r.CacheMisses = 0
	runs := make([]JSONRun, len(r.Runs))
	copy(runs, r.Runs)
	for i := range runs {
		runs[i].ElapsedMS = 0
		runs[i].InstanceMS = 0
		runs[i].CompileMS = 0
		runs[i].PlaceMS = 0
		runs[i].SimulateMS = 0
	}
	r.Runs = runs
	return r
}

// WriteJSON emits the suite report (with telemetry) as indented JSON.
func (s *SuiteResult) WriteJSON(w io.Writer, scale int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Report(scale))
}
