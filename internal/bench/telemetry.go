package bench

import (
	"strconv"

	"vgiw/internal/report"
)

// TelemetryTable renders the harness's host-side performance telemetry: one
// row per kernel with its wall-clock split by pipeline stage, a TOTAL row,
// and the sweep's cache accounting. All values are host timing — this table
// is for regressing the simulator's own performance, not the simulation.
func TelemetryTable(s *SuiteResult) *report.Table {
	t := &report.Table{
		Title: "Harness telemetry: host time per kernel (ms; artifact builds attributed to the run that built them)",
		Headers: []string{"kernel", "elapsed_ms", "instance_ms", "compile_ms",
			"place_ms", "simulate_ms"},
	}
	for _, kr := range s.Runs {
		t.AddRow(kr.Spec.Name, durMS(kr.Elapsed), durMS(kr.Stages.Instance),
			durMS(kr.Stages.Compile), durMS(kr.Stages.Place), durMS(kr.Stages.Simulate))
	}
	t.AddRow("TOTAL", durMS(s.WallClock), durMS(s.Stages.Instance),
		durMS(s.Stages.Compile), durMS(s.Stages.Place), durMS(s.Stages.Simulate))
	// Cache accounting as plain integers among the float-formatted timing
	// rows (AddRow only reformats float cells).
	t.AddRow("cache hits/misses",
		strconv.FormatUint(s.Cache.HitsTotal(), 10),
		strconv.FormatUint(s.Cache.MissesTotal(), 10), "", "", "")
	return t
}
