package fabric

import (
	"testing"
	"testing/quick"

	"vgiw/internal/compile"
	"vgiw/internal/kir"
)

func defaultGrid(t testing.TB) *Grid {
	t.Helper()
	g, err := NewGrid(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDefaultGridMatchesTable1(t *testing.T) {
	g := defaultGrid(t)
	if g.NumUnits() != 108 {
		t.Fatalf("units = %d, want 108", g.NumUnits())
	}
	want := map[kir.UnitClass]int{
		kir.ClassALU: 32, kir.ClassSCU: 12, kir.ClassLDST: 16,
		kir.ClassLVU: 16, kir.ClassSJU: 16, kir.ClassCVU: 16,
	}
	for cl, n := range want {
		if got := len(g.UnitsOf(cl)); got != n {
			t.Errorf("%v units = %d, want %d", cl, got, n)
		}
	}
	// Unique positions within bounds.
	seen := make(map[[2]int]bool)
	for _, u := range g.Units {
		if u.X < 0 || u.X >= 12 || u.Y < 0 || u.Y >= 9 {
			t.Fatalf("unit %d at (%d,%d) out of bounds", u.ID, u.X, u.Y)
		}
		key := [2]int{u.X, u.Y}
		if seen[key] {
			t.Fatalf("two units share cell (%d,%d)", u.X, u.Y)
		}
		seen[key] = true
	}
	// Memory units sit on the perimeter.
	for _, cl := range []kir.UnitClass{kir.ClassLDST, kir.ClassLVU} {
		for _, id := range g.UnitsOf(cl) {
			u := g.Units[id]
			if u.X != 0 && u.Y != 0 && u.X != 11 && u.Y != 8 {
				t.Errorf("%v unit %d at (%d,%d) not on perimeter", cl, id, u.X, u.Y)
			}
		}
	}
}

func TestGridValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumALU++ // mix no longer sums to the grid size
	if _, err := NewGrid(cfg); err == nil {
		t.Error("want error for inconsistent unit mix")
	}
	cfg = DefaultConfig()
	cfg.Cols, cfg.Rows = 2, 2
	if _, err := NewGrid(cfg); err == nil {
		t.Error("want error for tiny grid")
	}
}

func TestHopsProperties(t *testing.T) {
	g := defaultGrid(t)
	for a := 0; a < g.NumUnits(); a += 7 {
		for b := 0; b < g.NumUnits(); b += 5 {
			h := g.Hops(a, b)
			if h < 1 {
				t.Fatalf("Hops(%d,%d) = %d < 1", a, b, h)
			}
			if h != g.Hops(b, a) {
				t.Fatalf("Hops not symmetric for %d,%d", a, b)
			}
		}
	}
	// Distance grows with separation: opposite corners are farther than
	// neighbors.
	var corner1, corner2, mid int
	for _, u := range g.Units {
		switch {
		case u.X == 0 && u.Y == 0:
			corner1 = u.ID
		case u.X == 11 && u.Y == 8:
			corner2 = u.ID
		case u.X == 1 && u.Y == 0:
			mid = u.ID
		}
	}
	if g.Hops(corner1, corner2) <= g.Hops(corner1, mid) {
		t.Errorf("corner-to-corner (%d) should exceed neighbor distance (%d)",
			g.Hops(corner1, corner2), g.Hops(corner1, mid))
	}
}

// smallDFG compiles a compute-heavy one-block kernel.
func smallDFG(t testing.TB) *compile.BlockDFG {
	t.Helper()
	b := kir.NewBuilder("smol")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	base := b.Param(0)
	tid := b.Tid()
	addr := b.Add(base, tid)
	v := b.Load(addr, 0)
	x := b.FMul(v, v)
	y := b.FAdd(x, v)
	b.Store(addr, 0, y)
	b.Ret()
	ck, err := compile.Compile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return ck.DFGs[0]
}

func TestMaxReplicasAndPlacement(t *testing.T) {
	g := defaultGrid(t)
	graph := smallDFG(t)
	fit := MaxReplicasFor(g, graph)
	if fit < 2 {
		t.Fatalf("small graph should fit at least twice, got %d", fit)
	}
	p, err := PlaceMax(g, graph)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replicas != fit {
		t.Errorf("placed %d replicas, want %d", p.Replicas, fit)
	}
	// No unit is used twice across all replicas.
	used := make(map[int]bool)
	for r := 0; r < p.Replicas; r++ {
		for n, u := range p.UnitOf[r] {
			if used[u] {
				t.Fatalf("unit %d assigned twice (replica %d node %d)", u, r, n)
			}
			used[u] = true
			if g.Units[u].Class != graph.Nodes[n].Class() {
				t.Fatalf("node %d (%v) on %v unit", n, graph.Nodes[n].Class(), g.Units[u].Class)
			}
		}
	}
	// Edge latencies positive and match edge counts.
	for r := 0; r < p.Replicas; r++ {
		for _, n := range graph.Nodes {
			if len(p.EdgeLat[r][n.ID]) != len(n.In) {
				t.Fatalf("edge latency arity mismatch node %d", n.ID)
			}
			for _, l := range p.EdgeLat[r][n.ID] {
				if l < 1 {
					t.Fatalf("edge latency %d < 1", l)
				}
			}
		}
	}
	if p.AvgHops < 1 {
		t.Errorf("avg hops %f < 1", p.AvgHops)
	}
}

func TestPlaceRejectsOversubscription(t *testing.T) {
	g := defaultGrid(t)
	graph := smallDFG(t)
	if _, err := Place(g, graph, g.Config().MaxReplicas*100); err == nil {
		t.Error("want error for too many replicas")
	}
}

func TestPlacementLocality(t *testing.T) {
	// The greedy placer should do much better than the grid diameter on
	// average: producers and consumers land near each other.
	g := defaultGrid(t)
	p, err := PlaceMax(g, smallDFG(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.AvgHops > 3.5 {
		t.Errorf("avg hops %.2f too high; placement has no locality", p.AvgHops)
	}
}

func TestPlaceSingleReplicaOfLargeGraph(t *testing.T) {
	// A graph with exactly 32 ALU nodes fits once but not twice.
	b := kir.NewBuilder("wide")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	v := b.Param(0)
	acc := b.Const(0) // ALU node 1 (const)
	for i := 0; i < 30; i++ {
		acc = b.Add(acc, v)
	}
	b.Store(v, 0, acc)
	b.Ret()
	ck, err := compile.Compile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	graph := ck.DFGs[0]
	alus := graph.ClassCounts()[kir.ClassALU]
	if alus != 32 {
		t.Fatalf("test graph has %d ALU nodes, want 32 (param+const+30 adds)", alus)
	}
	g := defaultGrid(t)
	if fit := MaxReplicasFor(g, graph); fit != 1 {
		t.Errorf("fit = %d, want exactly 1", fit)
	}
}

// Property: hop latency is a metric-like function on the grid (symmetric,
// positive, respects a triangle-style bound within the approximation).
func TestHopsQuickProperties(t *testing.T) {
	g := defaultGrid(t)
	n := g.NumUnits()
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		hxy, hyz, hxz := g.Hops(x, y), g.Hops(y, z), g.Hops(x, z)
		if hxy < 1 || hxy != g.Hops(y, x) {
			return false
		}
		// The folded-hypercube approximation covers up to 2 cells/hop, so
		// a relaxed triangle inequality holds with one extra hop of slack.
		return hxz <= hxy+hyz+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Placement determinism: two placements of the same graph are identical.
func TestPlacementDeterministic(t *testing.T) {
	g := defaultGrid(t)
	graph := smallDFG(t)
	p1, err := PlaceMax(g, graph)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlaceMax(g, graph)
	if err != nil {
		t.Fatal(err)
	}
	for r := range p1.UnitOf {
		for n := range p1.UnitOf[r] {
			if p1.UnitOf[r][n] != p2.UnitOf[r][n] {
				t.Fatalf("placement differs at replica %d node %d", r, n)
			}
		}
	}
}
