package fabric

import (
	"strings"
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

func placedSmall(t *testing.T) (*Grid, *Placement, int) {
	t.Helper()
	b := kir.NewBuilder("smol")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	base := b.Param(0)
	tid := b.Tid()
	addr := b.Add(base, tid)
	v := b.Load(addr, 0)
	x := b.FMul(v, v)
	b.Store(addr, 0, x)
	b.Ret()
	ck, err := compile.Compile(b.MustBuild(), compile.Checked())
	if err != nil {
		t.Fatal(err)
	}
	g := defaultGrid(t)
	p, err := PlaceMax(g, ck.DFGs[0])
	if err != nil {
		t.Fatal(err)
	}
	return g, p, ck.LV.NumIDs
}

func wantDiag(t *testing.T, ds []verify.Diagnostic, sub string) {
	t.Helper()
	for _, d := range ds {
		if strings.Contains(d.Msg, sub) {
			return
		}
	}
	t.Fatalf("no diagnostic mentions %q in: %v", sub, verify.Join(ds))
}

func TestVerifyPlacement(t *testing.T) {
	t.Run("clean placement passes", func(t *testing.T) {
		g, p, numLVs := placedSmall(t)
		if err := VerifyPlaced("place", g, p, numLVs); err != nil {
			t.Fatalf("clean placement flagged: %v", err)
		}
	})

	t.Run("class mismatch", func(t *testing.T) {
		g, p, _ := placedSmall(t)
		// Move an ALU-class node onto an LDST unit.
		graph := p.Graph
		var node int = -1
		for _, n := range graph.Nodes {
			if n.Class() == kir.ClassALU {
				node = n.ID
				break
			}
		}
		if node < 0 {
			t.Fatal("no ALU node")
		}
		p.UnitOf[0][node] = g.UnitsOf(kir.ClassLDST)[0]
		wantDiag(t, VerifyPlacement("place", g, p), "placed on")
	})

	t.Run("double booking", func(t *testing.T) {
		g, p, _ := placedSmall(t)
		p.UnitOf[0][1] = p.UnitOf[0][0]
		wantDiag(t, VerifyPlacement("place", g, p), "already hosts")
	})

	t.Run("unit out of range", func(t *testing.T) {
		g, p, _ := placedSmall(t)
		p.UnitOf[0][0] = g.NumUnits() + 5
		wantDiag(t, VerifyPlacement("place", g, p), "grid has")
	})

	t.Run("stale edge latency", func(t *testing.T) {
		g, p, _ := placedSmall(t)
		for n := range p.EdgeLat[0] {
			if len(p.EdgeLat[0][n]) > 0 {
				p.EdgeLat[0][n][0] += 7
				wantDiag(t, VerifyPlacement("place", g, p), "interconnect distance")
				return
			}
		}
		t.Fatal("no data edges")
	})

	t.Run("replica overclaim", func(t *testing.T) {
		g, p, _ := placedSmall(t)
		p.Replicas = MaxReplicasFor(g, p.Graph) + 1
		ds := VerifyPlacement("place", g, p)
		wantDiag(t, ds, "fit the grid")
	})
}
