// Package fabric models the multithreaded coarse-grained reconfigurable
// fabric (MT-CGRF) of §3.5: a grid of heterogeneous functional units joined
// by a folded-hypercube interconnect, onto which the compiler places one or
// more replicas of a basic block's dataflow graph.
package fabric

import (
	"fmt"

	"vgiw/internal/kir"
)

// Config describes the fabric, matching Table 1 by default.
type Config struct {
	Cols, Rows int // grid dimensions; Cols*Rows units

	// Unit mix (must sum to Cols*Rows).
	NumALU  int // combined FPU-ALU compute units
	NumSCU  int // special compute units (non-pipelined ops)
	NumLDST int // load/store units (grid perimeter)
	NumLVU  int // live-value units (grid perimeter)
	NumSJU  int // split/join units
	NumCVU  int // control vector units

	// TokenBufDepth is the number of virtual execution channels per unit:
	// how many distinct threads can be in flight inside one replica.
	TokenBufDepth int
	// ReservationSlots bounds outstanding memory operations per LDST unit;
	// these buffers are what lets unblocked threads overtake stalled ones.
	ReservationSlots int
	// SCUInstances is the number of non-pipelined circuit instances inside
	// each SCU (virtual pipelining).
	SCUInstances int
	// ConfigCycles is the cost of reconfiguring the grid with a new
	// dataflow graph (34 cycles in the paper's prototype, §3.2).
	ConfigCycles int64
	// MaxReplicas caps basic-block replication.
	MaxReplicas int
}

// DefaultConfig is the Table 1 machine: a 108-unit grid with 32 FPU-ALUs,
// 12 SCUs, 16 LVUs, 16 LDST units, 16 SJUs and 16 CVUs.
func DefaultConfig() Config {
	return Config{
		Cols: 12, Rows: 9,
		NumALU: 32, NumSCU: 12, NumLDST: 16, NumLVU: 16, NumSJU: 16, NumCVU: 16,
		TokenBufDepth:    96,
		ReservationSlots: 64,
		SCUInstances:     20, // >= the longest non-pipelined latency: one issue per cycle (§3.5)
		ConfigCycles:     34,
		MaxReplicas:      8,
	}
}

// Validate checks the unit mix fills the grid exactly and the perimeter can
// host the memory units.
func (c Config) Validate() error {
	total := c.NumALU + c.NumSCU + c.NumLDST + c.NumLVU + c.NumSJU + c.NumCVU
	if total != c.Cols*c.Rows {
		return fmt.Errorf("fabric: unit mix sums to %d, grid has %d cells", total, c.Cols*c.Rows)
	}
	if c.Cols < 3 || c.Rows < 3 {
		return fmt.Errorf("fabric: grid %dx%d too small", c.Cols, c.Rows)
	}
	perim := 2*(c.Cols+c.Rows) - 4
	if c.NumLDST+c.NumLVU > perim {
		return fmt.Errorf("fabric: %d memory units exceed perimeter %d", c.NumLDST+c.NumLVU, perim)
	}
	if c.TokenBufDepth <= 0 || c.ReservationSlots <= 0 || c.SCUInstances <= 0 || c.MaxReplicas <= 0 {
		return fmt.Errorf("fabric: depths and replica cap must be positive")
	}
	return nil
}

// Unit is one functional unit at a fixed grid position.
type Unit struct {
	ID    int
	Class kir.UnitClass
	X, Y  int
}

// Grid is the instantiated fabric.
type Grid struct {
	cfg     Config
	Units   []Unit
	byClass map[kir.UnitClass][]int
}

// NewGrid lays the configured unit mix onto the grid. LDST and LVU units
// alternate along the perimeter (§3.5 places them there, next to the L1
// crossbar); compute, SJU, CVU and SCU units interleave across the interior
// so every neighborhood has a mix of classes.
func NewGrid(cfg Config) (*Grid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Grid{cfg: cfg, byClass: make(map[kir.UnitClass][]int)}

	// Collect perimeter and interior coordinates deterministically.
	type pos struct{ x, y int }
	var perim, interior []pos
	for y := 0; y < cfg.Rows; y++ {
		for x := 0; x < cfg.Cols; x++ {
			if x == 0 || y == 0 || x == cfg.Cols-1 || y == cfg.Rows-1 {
				perim = append(perim, pos{x, y})
			} else {
				interior = append(interior, pos{x, y})
			}
		}
	}

	// Perimeter: alternate LDST and LVU, then spill leftovers of other
	// classes into the remaining perimeter slots.
	var perimClasses []kir.UnitClass
	ldst, lvu := cfg.NumLDST, cfg.NumLVU
	for ldst > 0 || lvu > 0 {
		if ldst > 0 {
			perimClasses = append(perimClasses, kir.ClassLDST)
			ldst--
		}
		if lvu > 0 {
			perimClasses = append(perimClasses, kir.ClassLVU)
			lvu--
		}
	}

	// Interior (plus any perimeter slack): interleave the remaining
	// classes proportionally.
	remaining := map[kir.UnitClass]int{
		kir.ClassALU: cfg.NumALU,
		kir.ClassSCU: cfg.NumSCU,
		kir.ClassSJU: cfg.NumSJU,
		kir.ClassCVU: cfg.NumCVU,
	}
	order := []kir.UnitClass{kir.ClassALU, kir.ClassCVU, kir.ClassALU, kir.ClassSJU, kir.ClassALU, kir.ClassSCU}
	var mixed []kir.UnitClass
	for len(mixed) < cfg.NumALU+cfg.NumSCU+cfg.NumSJU+cfg.NumCVU {
		progressed := false
		for _, cl := range order {
			if remaining[cl] > 0 {
				mixed = append(mixed, cl)
				remaining[cl]--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}

	place := func(p pos, cl kir.UnitClass) {
		id := len(g.Units)
		g.Units = append(g.Units, Unit{ID: id, Class: cl, X: p.x, Y: p.y})
		g.byClass[cl] = append(g.byClass[cl], id)
	}
	pi := 0
	for _, cl := range perimClasses {
		place(perim[pi], cl)
		pi++
	}
	cells := append(interior, perim[pi:]...)
	if len(mixed) != len(cells) {
		return nil, fmt.Errorf("fabric: internal layout mismatch: %d classes for %d cells", len(mixed), len(cells))
	}
	for i, cl := range mixed {
		place(cells[i], cl)
	}
	return g, nil
}

// Config returns the grid configuration.
func (g *Grid) Config() Config { return g.cfg }

// NumUnits reports the total unit count.
func (g *Grid) NumUnits() int { return len(g.Units) }

// UnitsOf returns the unit IDs of one class.
func (g *Grid) UnitsOf(cl kir.UnitClass) []int { return g.byClass[cl] }

// Hops returns the token latency in cycles between two units. The folded
// hypercube connects each unit to its four nearest units and four nearest
// switches, and switches to switches at Manhattan distance two — so a token
// covers roughly two grid cells per cycle, with a one-cycle minimum.
func (g *Grid) Hops(a, b int) int64 {
	ua, ub := g.Units[a], g.Units[b]
	dx := ua.X - ub.X
	if dx < 0 {
		dx = -dx
	}
	dy := ua.Y - ub.Y
	if dy < 0 {
		dy = -dy
	}
	d := dx
	if dy > d {
		d = dy
	}
	if d == 0 {
		return 1
	}
	return int64((d + 1) / 2)
}
