package fabric

import (
	"fmt"

	"vgiw/internal/compile"
	"vgiw/internal/kir"
)

// Placement maps every node of every replica of a dataflow graph to a
// physical unit, with per-edge token latencies derived from the interconnect
// topology.
//
// Immutability contract: a Placement (and the BlockDFG it points at) is
// frozen once Place/PlaceMax returns. The engine only reads it during
// execution, and placement depends solely on the graph and the fabric
// configuration — not on LVC/CVT/memory parameters — so one Placement may be
// shared by any number of concurrent runs on machines with the same fabric
// config (the harness's artifact cache relies on this).
type Placement struct {
	Graph    *compile.BlockDFG
	Replicas int
	// UnitOf[r][n] is the unit hosting node n of replica r.
	UnitOf [][]int
	// EdgeLat[r][n][i] is the token latency from In[i]'s producer to node n
	// in replica r (parallel to Graph.Nodes[n].In).
	EdgeLat [][][]int64
	// CtlLat[r][n][i] mirrors EdgeLat for control edges (CtlIn).
	CtlLat [][][]int64
	// HopSum[r][n] is the total token distance into node n of replica r —
	// the sum of EdgeLat[r][n] and CtlLat[r][n]. Precomputed here so the
	// engine's per-thread hop accounting is one table read instead of two
	// edge-list walks per node visit.
	HopSum [][]uint64
	// AvgHops is the mean data-edge latency, a routing quality metric.
	AvgHops float64
}

// MaxReplicasFor computes how many replicas of the graph fit the grid:
// the minimum over unit classes of available/needed, capped by the
// configured maximum. Zero means the graph does not fit at all.
func MaxReplicasFor(g *Grid, graph *compile.BlockDFG) int {
	counts := graph.ClassCounts()
	r := g.cfg.MaxReplicas
	for cl, need := range counts {
		if need == 0 {
			continue
		}
		avail := len(g.byClass[cl])
		if avail/need < r {
			r = avail / need
		}
	}
	return r
}

// Place maps `replicas` copies of the graph onto the grid. Nodes are placed
// in topological order; each node takes the free unit of its class that
// minimizes the summed distance to its already-placed producers (and, for
// the initiator, a spread across the grid). Place fails if the replicas
// exceed capacity.
func Place(g *Grid, graph *compile.BlockDFG, replicas int) (*Placement, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("fabric: need at least one replica")
	}
	if fit := MaxReplicasFor(g, graph); replicas > fit {
		return nil, fmt.Errorf("fabric: %d replicas of %q (%d nodes) exceed capacity (fit %d)",
			replicas, graphName(graph), len(graph.Nodes), fit)
	}

	p := &Placement{Graph: graph, Replicas: replicas}
	free := make(map[int]bool, len(g.Units))
	for _, u := range g.Units {
		free[u.ID] = true
	}

	totalHops, totalEdges := int64(0), 0
	for r := 0; r < replicas; r++ {
		unitOf := make([]int, len(graph.Nodes))
		for _, n := range graph.Nodes {
			best, bestCost := -1, int64(1<<62)
			for _, cand := range g.byClass[n.Class()] {
				if !free[cand] {
					continue
				}
				cost := int64(0)
				for _, in := range n.In {
					cost += g.Hops(unitOf[in], cand)
				}
				for _, in := range n.CtlIn {
					cost += g.Hops(unitOf[in], cand)
				}
				if len(n.In)+len(n.CtlIn) == 0 {
					// Root nodes (the initiator): spread replicas out by
					// preferring the unit farthest from origin-placed
					// replicas — cheap heuristic: any free unit works.
					cost = 0
				}
				if cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("fabric: out of %v units placing node %d of replica %d",
					n.Class(), n.ID, r)
			}
			free[best] = false
			unitOf[n.ID] = best
		}
		p.UnitOf = append(p.UnitOf, unitOf)

		edgeLat := make([][]int64, len(graph.Nodes))
		ctlLat := make([][]int64, len(graph.Nodes))
		hopSum := make([]uint64, len(graph.Nodes))
		for _, n := range graph.Nodes {
			el := make([]int64, len(n.In))
			for i, in := range n.In {
				el[i] = g.Hops(unitOf[in], unitOf[n.ID])
				totalHops += el[i]
				totalEdges++
			}
			cl := make([]int64, len(n.CtlIn))
			for i, in := range n.CtlIn {
				cl[i] = g.Hops(unitOf[in], unitOf[n.ID])
			}
			edgeLat[n.ID] = el
			ctlLat[n.ID] = cl
			var hops uint64
			for _, l := range el {
				hops += uint64(l)
			}
			for _, l := range cl {
				hops += uint64(l)
			}
			hopSum[n.ID] = hops
		}
		p.EdgeLat = append(p.EdgeLat, edgeLat)
		p.CtlLat = append(p.CtlLat, ctlLat)
		p.HopSum = append(p.HopSum, hopSum)
	}
	if totalEdges > 0 {
		p.AvgHops = float64(totalHops) / float64(totalEdges)
	}
	return p, nil
}

// PlaceMax places as many replicas as fit (at least one).
func PlaceMax(g *Grid, graph *compile.BlockDFG) (*Placement, error) {
	fit := MaxReplicasFor(g, graph)
	if fit == 0 {
		return nil, fmt.Errorf("fabric: graph %q (%d nodes, %v) does not fit the grid",
			graphName(graph), len(graph.Nodes), graph.ClassCounts())
	}
	return Place(g, graph, fit)
}

func graphName(graph *compile.BlockDFG) string {
	return fmt.Sprintf("block%d", graph.BlockID)
}

// UnitStats summarizes fabric occupancy for a placement.
func (p *Placement) UnitStats(g *Grid) map[kir.UnitClass]int {
	used := make(map[kir.UnitClass]int)
	for _, unitOf := range p.UnitOf {
		for _, u := range unitOf {
			used[g.Units[u].Class]++
		}
	}
	return used
}

// Fits returns a predicate reporting whether a graph fits this grid at
// least once (used by compile.CompileFitted to drive block splitting).
func (g *Grid) Fits(graph *compile.BlockDFG) bool {
	return MaxReplicasFor(g, graph) > 0
}
