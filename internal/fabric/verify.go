package fabric

import (
	"fmt"

	"vgiw/internal/compile"
	"vgiw/internal/verify"
)

// VerifyPlacement checks a placed graph against the grid that produced it:
// every node of every replica sits on a distinct in-range unit of its class,
// the replica count is within what the grid can host, and every recorded
// edge latency equals the interconnect distance recomputed from the hosting
// units (≥ 1 cycle — two nodes never share a unit). It is the last line of
// the Checked pipeline: compile.VerifyGraph vouches for the graph, this
// vouches for its mapping onto hardware.
//
// Diagnostics use Block for the graph's source block ID and Op for the
// offending node, matching the compiler-side checkers.
func VerifyPlacement(pass string, g *Grid, p *Placement) []verify.Diagnostic {
	var ds []verify.Diagnostic
	block := -1
	if p.Graph != nil {
		block = p.Graph.BlockID
	}
	addf := func(node int, format string, args ...any) {
		ds = append(ds, verify.Diagnostic{Pass: pass, Block: block, Op: node,
			Msg: fmt.Sprintf(format, args...)})
	}
	if p.Graph == nil {
		addf(-1, "placement has no graph")
		return ds
	}
	graph := p.Graph
	if p.Replicas < 1 {
		addf(-1, "placement has %d replicas, need at least 1", p.Replicas)
		return ds
	}
	if fit := MaxReplicasFor(g, graph); p.Replicas > fit {
		addf(-1, "placement has %d replicas but only %d fit the grid", p.Replicas, fit)
	}
	if len(p.UnitOf) != p.Replicas || len(p.EdgeLat) != p.Replicas || len(p.CtlLat) != p.Replicas {
		addf(-1, "placement tables cover %d/%d/%d replicas, want %d",
			len(p.UnitOf), len(p.EdgeLat), len(p.CtlLat), p.Replicas)
		return ds
	}

	host := make(map[int][2]int, len(graph.Nodes)*p.Replicas) // unit -> (replica, node)
	for r := 0; r < p.Replicas; r++ {
		unitOf := p.UnitOf[r]
		if len(unitOf) != len(graph.Nodes) {
			addf(-1, "replica %d places %d nodes, graph has %d", r, len(unitOf), len(graph.Nodes))
			continue
		}
		for _, n := range graph.Nodes {
			u := unitOf[n.ID]
			if u < 0 || u >= len(g.Units) {
				addf(n.ID, "replica %d: node on unit %d, grid has %d units", r, u, len(g.Units))
				continue
			}
			if got, want := g.Units[u].Class, n.Class(); got != want {
				addf(n.ID, "replica %d: %v node placed on %v unit %d", r, want, got, u)
			}
			if prev, taken := host[u]; taken {
				addf(n.ID, "replica %d: unit %d already hosts node %d of replica %d",
					r, u, prev[1], prev[0])
			}
			host[u] = [2]int{r, n.ID}
		}
		if len(p.EdgeLat[r]) != len(graph.Nodes) || len(p.CtlLat[r]) != len(graph.Nodes) {
			addf(-1, "replica %d: latency tables cover %d/%d nodes, want %d",
				r, len(p.EdgeLat[r]), len(p.CtlLat[r]), len(graph.Nodes))
			continue
		}
		checkLats := func(n int, ins []int, lats []int64, kind string) {
			if len(lats) != len(ins) {
				addf(n, "replica %d: %d %s latencies for %d edges", r, len(lats), kind, len(ins))
				return
			}
			for i, in := range ins {
				if unitOf[in] < 0 || unitOf[in] >= len(g.Units) || unitOf[n] < 0 || unitOf[n] >= len(g.Units) {
					continue // out-of-range unit already reported above
				}
				want := g.Hops(unitOf[in], unitOf[n])
				if lats[i] != want {
					addf(n, "replica %d: %s edge %d latency %d, interconnect distance is %d",
						r, kind, i, lats[i], want)
				}
			}
		}
		for _, n := range graph.Nodes {
			checkLats(n.ID, n.In, p.EdgeLat[r][n.ID], "data")
			checkLats(n.ID, n.CtlIn, p.CtlLat[r][n.ID], "control")
		}
	}
	return ds
}

// VerifyPlaced runs the graph checker and the placement checker together:
// the full placed-artifact invariant for one block. numLVs bounds the
// graph's live-value IDs (0 for whole-kernel SGMF graphs, which must not
// touch the LVC).
func VerifyPlaced(pass string, g *Grid, p *Placement, numLVs int) error {
	var ds []verify.Diagnostic
	if p.Graph != nil {
		ds = compile.VerifyGraph(pass, p.Graph, numLVs)
	}
	ds = append(ds, VerifyPlacement(pass, g, p)...)
	return verify.Join(ds)
}
