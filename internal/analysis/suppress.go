// Suppressions: `//vgiw:allow <check> -- reason` silences one check at one
// site. The comment covers its own line and the next (so it works both as
// an end-of-line comment on the flagged statement and as a standalone line
// above it); placed in a function's doc comment it covers the whole
// function. Every use is tracked, so -strict-suppressions can report
// allows that no longer suppress anything — an escape must not outlive the
// code it excused.

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// MarkerAllow prefixes a suppression comment; the first following word is
// the check name, anything after `--` is the (conventionally mandatory)
// justification.
const MarkerAllow = "//vgiw:allow"

type allowEntry struct {
	pos       token.Position // position of the comment itself
	check     string
	startLine int // first suppressed line
	endLine   int // last suppressed line (inclusive)
	used      bool
}

type suppressions struct {
	// byFile groups entries by filename for cheap lookup.
	byFile map[string][]*allowEntry
}

// collectSuppressions scans every file of every unit for allow comments.
func collectSuppressions(prog *Program) *suppressions {
	s := &suppressions{byFile: make(map[string][]*allowEntry)}
	for _, u := range prog.Units {
		for _, f := range u.Files {
			// Doc-comment allows cover the whole declaration they document.
			docRange := make(map[*ast.Comment][2]int)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				start := prog.Fset.Position(fd.Pos()).Line
				end := prog.Fset.Position(fd.End()).Line
				for _, c := range fd.Doc.List {
					docRange[c] = [2]int{start, end}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					check, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					e := &allowEntry{pos: pos, check: check, startLine: pos.Line, endLine: pos.Line + 1}
					if r, ok := docRange[c]; ok {
						e.startLine, e.endLine = r[0], r[1]
					}
					s.byFile[pos.Filename] = append(s.byFile[pos.Filename], e)
				}
			}
		}
	}
	return s
}

// parseAllow extracts the check name from an allow comment.
func parseAllow(text string) (string, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), MarkerAllow)
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// covers reports whether some allow entry suppresses d, marking the entry
// used.
func (s *suppressions) covers(d Diagnostic) bool {
	hit := false
	for _, e := range s.byFile[d.Pos.Filename] {
		if e.check == d.Check && e.startLine <= d.Pos.Line && d.Pos.Line <= e.endLine {
			e.used = true
			hit = true
		}
	}
	return hit
}

// audit returns strict-mode findings: allow entries that suppressed
// nothing this run, and entries naming a check no pass provides. Only
// entries in reportable files surface, so a partial load does not complain
// about suppressions it never exercised elsewhere in the tree.
func (s *suppressions) audit(known map[string]bool, reportable map[string]bool) []Diagnostic {
	var out []Diagnostic
	for file, entries := range s.byFile {
		if !reportable[file] {
			continue
		}
		for _, e := range entries {
			switch {
			case !known[e.check]:
				out = append(out, Diagnostic{Pos: e.pos, Check: "suppress", Strict: true,
					Msg: "//vgiw:allow names unknown check " + e.check})
			case !e.used:
				out = append(out, Diagnostic{Pos: e.pos, Check: "suppress", Strict: true,
					Msg: "unused //vgiw:allow " + e.check + " suppression (nothing here trips the check; remove it)"})
			}
		}
	}
	return out
}
