package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusRoot is the known-bad corpus, mirroring testdata/invalid for the
// kernel verifier: every file seeds violations whose exact positioned
// diagnostics are pinned by //want:<check> (and //wantstrict:<check> for
// -strict-suppressions-only findings) comments in the corpus itself.
var corpusRoot = filepath.Join("..", "..", "testdata", "analysis", "src")

// expectation is one pinned diagnostic: file and line come from where the
// want comment sits (a trailing comment pins its own line; a standalone
// comment line pins the next line).
type expectation struct {
	file   string // corpus-relative, slash-separated
	line   int
	check  string
	substr string
	strict bool
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d: %s: ...%s...", e.file, e.line, e.check, e.substr)
}

// scanExpectations reads every corpus file for want comments.
func scanExpectations(t *testing.T) []expectation {
	t.Helper()
	var exps []expectation
	err := filepath.Walk(corpusRoot, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(corpusRoot, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, marker := range []struct {
				prefix string
				strict bool
			}{{"//want:", false}, {"//wantstrict:", true}} {
				idx := strings.Index(line, marker.prefix)
				if idx < 0 {
					continue
				}
				rest := line[idx+len(marker.prefix):]
				fields := strings.SplitN(rest, " ", 2)
				if len(fields) != 2 {
					t.Fatalf("%s:%d: malformed want comment %q", rel, i+1, line)
				}
				wantLine := i + 1 // trailing comment: same line
				if strings.TrimSpace(line[:idx]) == "" {
					wantLine = i + 2 // standalone comment: next line
				}
				exps = append(exps, expectation{
					file:   filepath.ToSlash(rel),
					line:   wantLine,
					check:  fields[0],
					substr: strings.TrimSpace(fields[1]),
					strict: marker.strict,
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Fatal("no //want expectations found in corpus")
	}
	return exps
}

func loadCorpus(t *testing.T) *Program {
	t.Helper()
	prog, err := Load(corpusRoot, "corpus")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// matchDiags checks diagnostics against expectations bidirectionally:
// every expectation fires at its exact file:line with its check and
// message, and every diagnostic is pinned by an expectation — so clean
// corpus functions firing is as much a failure as violations going quiet.
func matchDiags(t *testing.T, diags []Diagnostic, exps []expectation) {
	t.Helper()
	used := make([]bool, len(diags))
	for _, e := range exps {
		found := false
		for i, d := range diags {
			if used[i] {
				continue
			}
			if filepath.ToSlash(d.Pos.Filename) != filepath.ToSlash(filepath.Join(corpusRoot, filepath.FromSlash(e.file))) {
				continue
			}
			if d.Pos.Line != e.line || d.Check != e.check || !strings.Contains(d.Msg, e.substr) {
				continue
			}
			used[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("expectation not met: %s\ngot:\n%s", e, dumpDiags(diags))
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("unexpected diagnostic (no //want pins it): %s", d)
		}
	}
}

func dumpDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// TestCorpus runs the full pass suite over the known-bad corpus and
// requires an exact bijection between diagnostics and //want comments.
func TestCorpus(t *testing.T) {
	prog := loadCorpus(t)
	a := &Analyzer{Passes: DefaultPasses()}
	diags := a.Run(prog)
	var want []expectation
	for _, e := range scanExpectations(t) {
		if !e.strict {
			want = append(want, e)
		}
	}
	matchDiags(t, diags, want)
}

// TestCorpusStrict re-runs with -strict-suppressions semantics: the
// //wantstrict expectations (unused allows, unknown checks, stale
// coarsepoll markers) must surface on top of the regular set.
func TestCorpusStrict(t *testing.T) {
	prog := loadCorpus(t)
	a := &Analyzer{Passes: DefaultPasses(), Strict: true}
	diags := a.Run(prog)
	matchDiags(t, diags, scanExpectations(t))
}

// TestSeededSuiteResultExact pins the acceptance-criterion scenario — an
// unsorted map range reaching SuiteResult JSON — down to the exact
// rendered diagnostic, column included.
func TestSeededSuiteResultExact(t *testing.T) {
	prog := loadCorpus(t)
	a := &Analyzer{Passes: []*Pass{DetPass()}}
	var hits []string
	for _, d := range a.Run(prog) {
		if strings.Contains(d.Msg, "json-tagged field Rows receives") {
			hits = append(hits, d.String())
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one SuiteResult field diagnostic, got %v", hits)
	}
	wantFile := filepath.Join(corpusRoot, "det", "det.go")
	line := mustLineOf(t, wantFile, "res.Rows = rows")
	want := fmt.Sprintf("%s:%d:2: det: json-tagged field Rows receives a value carrying map iteration order without an intervening sort", wantFile, line)
	if hits[0] != want {
		t.Fatalf("exact diagnostic mismatch:\n got %s\nwant %s", hits[0], want)
	}
}

// mustLineOf returns the 1-based line of the first occurrence of substr.
func mustLineOf(t *testing.T, file, substr string) int {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, substr) {
			return i + 1
		}
	}
	t.Fatalf("%s: no line contains %q", file, substr)
	return 0
}

// TestReportFiltering loads only detcross/detb: deta must still be
// analyzed (its facts drive detb's findings) but produce no diagnostics
// of its own.
func TestReportFiltering(t *testing.T) {
	prog, err := LoadPackages(corpusRoot, "corpus", []string{"detcross/detb"})
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Passes: DefaultPasses()}
	diags := a.Run(prog)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics from detb alone, got:\n%s", dumpDiags(diags))
	}
	for _, d := range diags {
		if !strings.HasSuffix(filepath.ToSlash(d.Pos.Filename), "detcross/detb/detb.go") {
			t.Errorf("diagnostic outside the requested package: %s", d)
		}
	}
}

// TestJSONOutput checks the machine-output schema and root-relativized
// paths `make analyze` consumers rely on.
func TestJSONOutput(t *testing.T) {
	prog := loadCorpus(t)
	a := &Analyzer{Passes: []*Pass{DetPass()}}
	diags := a.Run(prog)
	var buf bytes.Buffer
	if err := RenderJSON(&buf, diags, corpusRoot); err != nil {
		t.Fatal(err)
	}
	var out []JSONDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != len(diags) {
		t.Fatalf("JSON rows %d != diagnostics %d", len(out), len(diags))
	}
	for _, d := range out {
		if filepath.IsAbs(d.File) || strings.HasPrefix(d.File, "..") {
			t.Errorf("path not root-relative: %q", d.File)
		}
		if d.Line == 0 || d.Check == "" || d.Msg == "" {
			t.Errorf("incomplete row: %+v", d)
		}
	}
}

// TestRepoIsClean is the enforcement test behind `make analyze`: the real
// tree must analyze clean under the full suite in strict mode — fix the
// code or add a justified //vgiw:allow.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog, err := Load(filepath.Join("..", ".."), "vgiw")
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Passes: DefaultPasses(), Strict: true}
	if diags := a.Run(prog); len(diags) > 0 {
		t.Errorf("vgiwcheck findings in the tree:\n%s", dumpDiags(diags))
	}
}
