// The loader: parse and type-check every package of the module exactly
// once, through one importer chain, so types.Object identity holds across
// packages and facts can be keyed on objects. Module-internal imports are
// resolved by this loader itself (recursively, with a cache); everything
// else falls through to the stdlib source importer — the same resolver
// internal/lint used, but shared across the whole run instead of rebuilt
// per package, which is what makes a whole-module analysis affordable.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Unit is one parsed, type-checked package of the program.
type Unit struct {
	Path      string // import path ("vgiw/internal/engine")
	Dir       string // directory the files were parsed from
	Name      string // package name
	Files     []*ast.File
	Filenames []string // per-file source path, parallel to Files
	Pkg       *types.Package
	Info      *types.Info
	// Report marks units whose diagnostics the caller asked for. Units
	// loaded only as dependencies are analyzed (their facts and
	// suppressions must exist) but not reported on.
	Report bool
}

// A Program is a loaded module: all units in dependency order (every
// unit's module-internal imports precede it).
type Program struct {
	Fset  *token.FileSet
	Units []*Unit
}

// Unit returns the unit with the given import path, or nil.
func (p *Program) Unit(path string) *Unit {
	for _, u := range p.Units {
		if u.Path == path {
			return u
		}
	}
	return nil
}

type loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string
	std     types.Importer
	units   map[string]*Unit
	order   []*Unit
	loading map[string]bool
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		units:   make(map[string]*Unit),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer: module-internal paths are loaded (and
// cached) by this loader, so the resulting *types.Package — and every
// object in it — is the same one the analysis passes see; all other paths
// go to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		u, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

func (l *loader) load(path string) (*Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	pkgs, err := parser.ParseDir(l.fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var names []string
	for name := range pkgs {
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: %s: no non-test Go files", dir)
	}
	if len(names) > 1 {
		sort.Strings(names)
		return nil, fmt.Errorf("analysis: %s: multiple packages %v in one directory", dir, names)
	}
	pkg := pkgs[names[0]]

	var files []*ast.File
	var fnames []string
	for fname := range pkg.Files {
		fnames = append(fnames, fname)
	}
	sort.Strings(fnames)
	for _, fname := range fnames {
		files = append(files, pkg.Files[fname])
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}

	u := &Unit{
		Path:      path,
		Dir:       dir,
		Name:      names[0],
		Files:     files,
		Filenames: fnames,
		Pkg:       tpkg,
		Info:      info,
	}
	l.units[path] = u
	l.order = append(l.order, u)
	return u, nil
}

// program wraps the loader's completed units (already in dependency order:
// load() appends a unit only after all its imports finished).
func (l *loader) program() *Program {
	return &Program{Fset: l.fset, Units: l.order}
}

// Load parses and type-checks the whole module rooted at root (skipping
// testdata and hidden directories) and returns it as a Program with every
// unit marked reportable.
func Load(root, modPath string) (*Program, error) {
	rels, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	return LoadPackages(root, modPath, rels)
}

// LoadPackages loads the named package directories (relative to root, "."
// for the root package) plus, transitively, every module-internal package
// they import. Only the named packages are marked reportable.
func LoadPackages(root, modPath string, rels []string) (*Program, error) {
	l := newLoader(root, modPath)
	for _, rel := range rels {
		rel = filepath.ToSlash(filepath.Clean(rel))
		path := modPath
		if rel != "." {
			path = modPath + "/" + rel
		}
		u, err := l.load(path)
		if err != nil {
			return nil, err
		}
		u.Report = true
	}
	return l.program(), nil
}

// LoadDir loads the single package in dir under the given import path,
// with no module siblings — module-external imports resolve through the
// source importer. It exists for standalone fixtures (internal/lint's
// testdata) and the thin lint shim.
func LoadDir(dir, pkgPath string) (*Program, error) {
	l := newLoader(dir, pkgPath)
	u, err := l.load(pkgPath)
	if err != nil {
		return nil, err
	}
	u.Report = true
	return l.program(), nil
}

// packageDirs returns every directory under root (as a root-relative
// path) that contains non-test Go files, skipping testdata and hidden
// directories.
func packageDirs(root string) ([]string, error) {
	var rels []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != root && (base == "testdata" || strings.HasPrefix(base, ".")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGo(path)
		if err != nil || !hasGo {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rels = append(rels, filepath.ToSlash(rel))
		return nil
	})
	return rels, err
}

func dirHasGo(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
