// The three original vgiwlint checks, migrated onto the analysis driver.
// Messages and semantics are preserved exactly — internal/lint is now a
// thin shim over these passes, and its fixture tests pin the behavior.
//
//   - hotpath: //vgiw:hotpath functions must not allocate (append, map
//     literals, make(map), closures, fmt calls). Pre-sized slice make is
//     allowed: the hot loops pre-size reusable buffers.
//   - nilguard: exported pointer-receiver methods of trace.Sink must
//     handle a nil receiver first (nil sink = tracing off).
//   - ctxpoll: ctx.Err() polls in loops must be strided, or the function
//     carries //vgiw:coarsepoll. In strict mode the pass also audits
//     coarsepoll markers that no longer excuse any poll.

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MarkerHotpath and MarkerCoarsepoll are the magic doc-comment markers the
// legacy checks key on.
const (
	MarkerHotpath    = "//vgiw:hotpath"
	MarkerCoarsepoll = "//vgiw:coarsepoll"
)

// HotpathPass returns the hotpath allocation-ban pass.
func HotpathPass() *Pass {
	return &Pass{
		Name: "hotpath",
		Doc:  "//vgiw:hotpath functions must not allocate",
		Run: func(c *Context) {
			for _, fd := range funcDecls(c.Unit) {
				if hasMarker(fd.Doc, MarkerHotpath) {
					checkHotpath(c, fd)
				}
			}
		},
	}
}

// NilguardPass returns the trace.Sink nil-receiver pass.
func NilguardPass() *Pass {
	return &Pass{
		Name: "nilguard",
		Doc:  "exported (*trace.Sink) methods must handle a nil receiver first",
		Run: func(c *Context) {
			if c.Unit.Name != "trace" {
				return
			}
			for _, fd := range funcDecls(c.Unit) {
				checkNilGuard(c, fd)
			}
		},
	}
}

// CtxpollPass returns the strided-context-poll pass.
func CtxpollPass() *Pass {
	return &Pass{
		Name: "ctxpoll",
		Doc:  "ctx.Err() polls in loops must be strided or //vgiw:coarsepoll-marked",
		Run: func(c *Context) {
			for _, fd := range funcDecls(c.Unit) {
				marked := hasMarker(fd.Doc, MarkerCoarsepoll)
				polls := checkCtxPoll(c, fd, marked)
				if marked && polls == 0 {
					c.ReportStrictf(fd.Pos(), "unused //vgiw:coarsepoll on %s: no ctx.Err() poll inside a loop (remove the marker)", fd.Name.Name)
				}
			}
		},
	}
}

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// checkHotpath flags allocating constructs in a //vgiw:hotpath function:
// append, map literals, make(map), func literals, and fmt calls. Slice
// make() is allowed — the hot loops pre-size reusable buffers, which is
// exactly the pattern that keeps the steady state allocation-free.
func checkHotpath(c *Context, fd *ast.FuncDecl) {
	info := c.Unit.Info
	add := func(pos token.Pos, format string, args ...any) {
		c.Reportf(pos, fmt.Sprintf(format, args...)+" in //vgiw:hotpath function "+fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "function literal (closure allocation)")
			return false // the closure's own body is off the hot path
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					add(n.Pos(), "map literal")
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if obj, ok := info.Uses[fun].(*types.Builtin); ok {
					switch obj.Name() {
					case "append":
						add(n.Pos(), "append (may grow and allocate)")
					case "make":
						if len(n.Args) > 0 {
							if t := info.TypeOf(n.Args[0]); t != nil {
								if _, isMap := t.Underlying().(*types.Map); isMap {
									add(n.Pos(), "make(map)")
								}
							}
						}
					}
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
						add(n.Pos(), "fmt.%s call (allocates on every call)", fun.Sel.Name)
					}
				}
			}
		}
		return true
	})
}

// checkNilGuard enforces the trace.Sink receiver contract: every exported
// pointer-receiver method of Sink must handle a nil receiver before touching
// it, either with a leading `if s == nil` statement or, for one-line
// methods, a `s != nil`/`s == nil` test inside the single return expression.
func checkNilGuard(c *Context, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return
	}
	id, ok := star.X.(*ast.Ident)
	if !ok || id.Name != "Sink" {
		return
	}
	if len(fd.Recv.List[0].Names) != 1 {
		return // unnamed receiver cannot be dereferenced at all
	}
	recv := fd.Recv.List[0].Names[0].Name
	if len(fd.Body.List) > 0 {
		switch first := fd.Body.List[0].(type) {
		case *ast.IfStmt:
			if mentionsNilTest(first.Cond, recv) {
				return
			}
		case *ast.ReturnStmt:
			for _, e := range first.Results {
				if mentionsNilTest(e, recv) {
					return
				}
			}
		}
	}
	c.Reportf(fd.Pos(), "exported method (*Sink).%s must start by handling a nil receiver (a nil sink means tracing is off)", fd.Name.Name)
}

// mentionsNilTest reports whether expr contains `recv == nil` or
// `recv != nil` (possibly inside a larger boolean expression).
func mentionsNilTest(expr ast.Expr, recv string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, xo := be.X.(*ast.Ident)
		y, yo := be.Y.(*ast.Ident)
		if xo && yo && ((x.Name == recv && y.Name == "nil") || (y.Name == recv && x.Name == "nil")) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkCtxPoll flags context.Context Err() polls that run on every
// iteration of a loop, unless marked is true (the //vgiw:coarsepoll
// escape). It returns the number of in-loop polls seen, so the pass can
// audit markers that excuse nothing.
func checkCtxPoll(c *Context, fd *ast.FuncDecl, marked bool) int {
	info := c.Unit.Info
	polls := 0
	type frame struct {
		loop    bool // ForStmt or RangeStmt
		strided bool // IfStmt with a modulus condition or an init statement
	}
	var stack []frame

	// ast.Inspect cannot report which node a post-order visit is leaving,
	// and the check needs matched push/pop around loops and ifs, so walk
	// with explicit recursion instead.
	var rec func(n ast.Node)
	rec = func(n ast.Node) {
		if n == nil {
			return
		}
		pushed := false
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			stack = append(stack, frame{loop: true})
			pushed = true
		case *ast.IfStmt:
			// An if with a modulus condition or a countdown init is a stride
			// guard — but `if err := ctx.Err(); ...` is the poll itself, not
			// a guard, so an init that contains the poll does not count.
			strided := hasModulus(n.Cond) ||
				(n.Init != nil && !containsCtxErr(n.Init, info))
			stack = append(stack, frame{strided: strided})
			pushed = true
		case *ast.FuncLit:
			// A nested closure polls on its own schedule; its loops are
			// judged on their own, not against the enclosing function's.
			saved := stack
			stack = nil
			rec(n.Body)
			stack = saved
			return
		case *ast.CallExpr:
			if isCtxErrCall(n, info) {
				inLoop, strided := false, false
				for _, f := range stack {
					if f.loop {
						inLoop, strided = true, false // reset at each loop level
					}
					if f.strided {
						strided = true
					}
				}
				if inLoop && !strided {
					polls++
					if !marked {
						c.Reportf(n.Pos(), "ctx.Err() polled every loop iteration in %s; stride the poll or mark the function %s", fd.Name.Name, MarkerCoarsepoll)
					}
				}
			}
		}
		for _, child := range children(n) {
			rec(child)
		}
		if pushed {
			stack = stack[:len(stack)-1]
		}
	}
	rec(fd.Body)
	return polls
}

// children returns the direct child nodes of n, in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // skip n itself, descend
		}
		if c != nil {
			out = append(out, c)
		}
		return false // do not descend further; callers handle recursion
	})
	return out
}

func containsCtxErr(n ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok && isCtxErrCall(call, info) {
			found = true
			return false
		}
		return true
	})
	return found
}

func hasModulus(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.REM {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCtxErrCall reports whether n is x.Err() with x a context.Context.
func isCtxErrCall(n *ast.CallExpr, info *types.Info) bool {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Err" || len(n.Args) != 0 {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}
