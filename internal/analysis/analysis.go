// Package analysis is the repo's multi-pass static-analysis framework: a
// shared whole-module loader over go/parser + go/types (stdlib only, no
// external dependencies — the same constraint internal/lint proved out),
// a set of type-aware passes with cross-package fact propagation, source-
// positioned diagnostics, //vgiw:allow suppressions with unused-suppression
// auditing, and JSON/human output. cmd/vgiwcheck fronts it; `make analyze`
// gates `make check` on it.
//
// Why it exists: every guarantee this repo sells — byte-identical parallel
// sweeps, fleet-wide exactly-once merges, store/restart byte-identity —
// rests on determinism and lock discipline that -race and goldens can only
// police at runtime, one execution at a time. The passes here prove the
// same properties at analysis time, over every path:
//
//   - det: values taken from a map iteration (or a multi-way select) must
//     not reach a serialized output (json/csv/fmt writers, json-tagged
//     struct fields, channel sends) without an intervening sort. This is
//     the exact bug class PRs 1 and 2 fixed by hand.
//   - lock: mutex-containing values must not be copied; explicit
//     Lock/Unlock windows must not span blocking operations (channel ops,
//     time.Sleep, net/http calls, WaitGroup.Wait); sync.Cond.Wait must sit
//     in a re-check loop.
//   - golife: every `go` statement must be tied to a context, a WaitGroup,
//     or a stop channel reachable from its body — untied goroutines are
//     how drains and SIGTERM snapshots go incomplete.
//   - hotpath, nilguard, ctxpoll: the three vgiwlint checks, migrated onto
//     this driver (internal/lint is now a thin shim over them).
//
// A pass may export facts keyed by types.Object; units are analyzed in
// dependency order, so facts exported by a callee package are visible when
// its callers are analyzed. Object identity holds across the module
// because the Loader type-checks every module-internal package exactly
// once through one importer chain.
//
// Suppression policy: a finding is silenced by a `//vgiw:allow <check> --
// <reason>` comment on the flagged line, on the line above it, or in the
// enclosing function's doc comment (which covers the whole function). The
// reason is mandatory by convention — a suppression is a claim that the
// flagged code is deliberately, defensibly what it says. `vgiwcheck
// -strict-suppressions` additionally reports allow comments (and
// //vgiw:coarsepoll markers) that no longer suppress anything, so escapes
// cannot outlive the code they excused.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Pass is one named analysis run over every loaded unit.
type Pass struct {
	Name string // check name: diagnostics carry it, //vgiw:allow keys on it
	Doc  string // one-line description for catalogs and usage output
	Run  func(*Context)
}

// A Diagnostic is one positioned finding from a pass.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
	// Strict marks audit findings (unused suppressions and markers) that
	// only surface under -strict-suppressions.
	Strict bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Msg)
}

// Context is what a pass runs against: one unit of a loaded program, plus
// the shared fact store and a reporting surface.
type Context struct {
	Pass  *Pass
	Prog  *Program
	Unit  *Unit
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic for this pass at pos.
func (c *Context) Reportf(pos token.Pos, format string, args ...any) {
	*c.diags = append(*c.diags, Diagnostic{
		Pos:   c.Prog.Fset.Position(pos),
		Check: c.Pass.Name,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// ReportStrictf records an audit diagnostic that only surfaces under
// -strict-suppressions.
func (c *Context) ReportStrictf(pos token.Pos, format string, args ...any) {
	*c.diags = append(*c.diags, Diagnostic{
		Pos:    c.Prog.Fset.Position(pos),
		Check:  c.Pass.Name,
		Msg:    fmt.Sprintf(format, args...),
		Strict: true,
	})
}

// Facts is the cross-package fact store. Facts are keyed by (pass, object);
// a pass only sees its own facts. Because units are analyzed in dependency
// order, a fact exported while analyzing package P is visible to every
// pass run over a package that imports P.
type Facts struct {
	m map[factKey]any
}

type factKey struct {
	pass string
	obj  types.Object
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]any)} }

// ExportFact attaches fact to obj for this context's pass.
func (c *Context) ExportFact(obj types.Object, fact any) {
	c.Facts.m[factKey{c.Pass.Name, obj}] = fact
}

// Fact returns the fact attached to obj by this context's pass, if any.
func (c *Context) Fact(obj types.Object) (any, bool) {
	f, ok := c.Facts.m[factKey{c.Pass.Name, obj}]
	return f, ok
}

// An Analyzer runs a set of passes over a loaded program and applies the
// suppression policy to the result.
type Analyzer struct {
	Passes []*Pass
	// Strict surfaces audit diagnostics: unused //vgiw:allow suppressions,
	// unknown check names in allow comments, and unused //vgiw:coarsepoll
	// markers.
	Strict bool
}

// DefaultPasses returns the full pass suite in its canonical order.
func DefaultPasses() []*Pass {
	return []*Pass{
		DetPass(),
		LockPass(),
		GolifePass(),
		HotpathPass(),
		NilguardPass(),
		CtxpollPass(),
	}
}

// Run executes every pass over every unit (in dependency order, so facts
// flow from imported packages to importers), applies suppressions, and
// returns the surviving diagnostics sorted by position. Only diagnostics
// positioned in files belonging to units with Report set are returned —
// dependency units are still analyzed so their facts and suppressions
// exist, but a `vgiwcheck internal/fleet` run reports on fleet alone.
func (a *Analyzer) Run(prog *Program) []Diagnostic {
	facts := NewFacts()
	var raw []Diagnostic
	for _, u := range prog.Units {
		for _, p := range a.Passes {
			ctx := &Context{Pass: p, Prog: prog, Unit: u, Facts: facts, diags: &raw}
			p.Run(ctx)
		}
	}

	sup := collectSuppressions(prog)
	var out []Diagnostic
	reportable := make(map[string]bool)
	for _, u := range prog.Units {
		if u.Report {
			for _, name := range u.Filenames {
				reportable[name] = true
			}
		}
	}
	for _, d := range raw {
		if d.Strict && !a.Strict {
			continue
		}
		if sup.covers(d) {
			continue
		}
		if !reportable[d.Pos.Filename] {
			continue
		}
		out = append(out, d)
	}
	if a.Strict {
		known := make(map[string]bool)
		for _, p := range a.Passes {
			known[p.Name] = true
		}
		out = append(out, sup.audit(known, reportable)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// funcDecls yields every function declaration with a body in the unit, in
// file order. The shared iteration keeps per-pass boilerplate down.
func funcDecls(u *Unit) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
