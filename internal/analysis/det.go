// The det pass: map iteration order (and select arrival order) must not
// reach a serialized output without an intervening sort.
//
// Go randomizes map iteration per run, and a multi-way select picks among
// ready cases pseudo-randomly — both are exactly the nondeterminism the
// repo's guarantees (byte-identical parallel sweeps, store/restart
// byte-identity, fleet-wide merged reports) cannot absorb. The pass runs a
// function-local, flow-approximate taint analysis:
//
//   - Sources: `range` over a map; appends inside a multi-way select
//     clause. Values accumulated from a source (append to a pre-existing
//     slice, string +=) taint the accumulator. Floating-point += inside a
//     map range is reported outright: reassociating float addition changes
//     the sum, so no later sort can repair it.
//   - Sinks: serialization calls (encoding/json Marshal/Encode,
//     encoding/csv writes, fmt print/Fprint family, io/bytes/strings/hash
//     Write*), assignment into a json- or csv-tagged struct field, and —
//     inside the source loop itself — any sink call or channel send.
//   - Sanitizer: a sort (sort.* / slices.Sort*) whose argument is the
//     tainted value clears the taint.
//
// Cross-package flow rides the fact store: a function that returns a value
// still tainted at the return exports OrderedFact; callers (in this
// package or any importer, analyzed later in dependency order) treat its
// call result as tainted. The analysis is deliberately approximate —
// statement order is approximated by traversal order, and only values
// nameable as expressions are tracked — but every approximation errs
// toward silence on sorted code and noise on genuinely unordered flows,
// which the corpus tests pin in both directions.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OrderedFact marks a function whose return value carries map-iteration
// (or select-arrival) order that was never sorted before the return.
type OrderedFact struct{}

// DetPass returns the determinism-taint pass.
func DetPass() *Pass {
	return &Pass{
		Name: "det",
		Doc:  "map/select iteration order must not reach serialized output unsorted",
		Run:  runDet,
	}
}

func runDet(c *Context) {
	// Phase 1 computes facts only (which functions return unsorted
	// map-ordered data), so same-package callers analyzed in phase 2 see
	// them regardless of declaration order.
	for _, fd := range funcDecls(c.Unit) {
		w := &detWalker{c: c, fd: fd, factsOnly: true, tainted: map[string]*taint{}}
		w.walk(fd.Body)
	}
	for _, fd := range funcDecls(c.Unit) {
		w := &detWalker{c: c, fd: fd, tainted: map[string]*taint{}}
		w.walk(fd.Body)
	}
}

// A taint records why a tracked expression's content order is unstable.
type taint struct {
	origin string // "map iteration", "select arrival", or "call to F"
}

type detWalker struct {
	c         *Context
	fd        *ast.FuncDecl
	factsOnly bool
	// mapRanges is the stack of enclosing `range <map>` statements.
	mapRanges []*ast.RangeStmt
	// selects is the stack of enclosing multi-way selects.
	selects []*ast.SelectStmt
	// tainted tracks order-unstable values by canonical expression text
	// (types.ExprString): plain variables and field chains both work.
	tainted map[string]*taint
}

func (w *detWalker) info() *types.Info { return w.c.Unit.Info }

func (w *detWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		if isMapType(w.info().TypeOf(n.X)) {
			w.walk(n.X)
			w.mapRanges = append(w.mapRanges, n)
			w.walk(n.Body)
			w.mapRanges = w.mapRanges[:len(w.mapRanges)-1]
			return
		}
	case *ast.SelectStmt:
		comm := 0
		for _, cl := range n.Body.List {
			if cl.(*ast.CommClause).Comm != nil {
				comm++
			}
		}
		if comm >= 2 {
			w.selects = append(w.selects, n)
			w.walk(n.Body)
			w.selects = w.selects[:len(w.selects)-1]
			return
		}
	case *ast.AssignStmt:
		w.assign(n)
		return
	case *ast.SendStmt:
		if len(w.mapRanges) > 0 {
			w.report(n.Arrow, "map iteration order determines channel send order (sort the keys first)")
		}
	case *ast.CallExpr:
		w.call(n)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if w.lookup(res) != nil {
				if obj := w.info().Defs[w.fd.Name]; obj != nil && w.factsOnly {
					w.c.ExportFact(obj, OrderedFact{})
				}
			}
		}
	case *ast.FuncLit:
		// A closure shares the enclosing function's variables, so taint
		// state flows straight through; map-range/select context does not.
		savedR, savedS := w.mapRanges, w.selects
		w.mapRanges, w.selects = nil, nil
		w.walk(n.Body)
		w.mapRanges, w.selects = savedR, savedS
		return
	}
	for _, child := range children(n) {
		w.walk(child)
	}
}

// assign handles taint introduction, propagation, clearing, and the
// json-tagged-field sink.
func (w *detWalker) assign(n *ast.AssignStmt) {
	for _, rhs := range n.Rhs {
		w.walk(rhs) // sinks/sorts inside the RHS still count
	}
	// Compound assignment: `s += v` accumulates in iteration order.
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		if len(n.Lhs) == 1 && len(w.mapRanges) > 0 {
			t := w.info().TypeOf(n.Lhs[0])
			if b, ok := t.Underlying().(*types.Basic); ok {
				switch {
				case n.Tok == token.ADD_ASSIGN && b.Info()&types.IsFloat != 0:
					w.report(n.TokPos, "floating-point accumulation follows map iteration order (sum over sorted keys instead)")
				case n.Tok == token.ADD_ASSIGN && b.Info()&types.IsString != 0:
					w.taintExpr(n.Lhs[0], "map iteration order")
				}
			}
		}
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		// Multi-value form (x, y := f()): taint every LHS if f carries
		// the fact.
		if len(n.Rhs) == 1 {
			if call, ok := n.Rhs[0].(*ast.CallExpr); ok && w.calleeOrdered(call) {
				for _, lhs := range n.Lhs {
					w.taintExpr(lhs, "the unsorted map-order result of "+calleeName(call, w.info()))
				}
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		rhs := n.Rhs[i]
		switch origin := w.rhsOrigin(lhs, rhs); origin {
		case "":
			// Plain overwrite: whatever order-instability the old value
			// had is gone.
			w.clearExpr(lhs)
		default:
			if tag, field := w.taggedField(lhs); tag != "" {
				w.report(lhs.Pos(), "%s-tagged field %s receives a value carrying %s without an intervening sort", tag, field, origin)
				w.clearExpr(lhs)
				continue
			}
			w.taintExpr(lhs, origin)
		}
	}
	// Composite literals on the RHS may stuff tainted values into tagged
	// fields directly: T{Rows: s}.
	for _, rhs := range n.Rhs {
		w.compositeSink(rhs)
	}
}

// rhsOrigin decides whether assigning rhs to lhs makes lhs order-unstable,
// returning the origin description ("" for a clean overwrite).
func (w *detWalker) rhsOrigin(lhs, rhs ast.Expr) string {
	if t := w.lookup(rhs); t != nil {
		return t.origin
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if isBuiltinAppend(call, w.info()) {
			for _, arg := range call.Args {
				if t := w.lookup(arg); t != nil {
					return t.origin
				}
			}
			// Accumulating append: the target predates the loop, so
			// successive iterations deposit in iteration order.
			if len(w.mapRanges) > 0 && w.declaredBefore(lhs, w.mapRanges[len(w.mapRanges)-1].Pos()) {
				return "map iteration order"
			}
			if len(w.selects) > 0 && w.declaredBefore(lhs, w.selects[len(w.selects)-1].Pos()) {
				return "select arrival order"
			}
			return ""
		}
		if w.calleeOrdered(call) {
			return "the unsorted map-order result of " + calleeName(call, w.info())
		}
	}
	return ""
}

// call handles sink calls and sort sanitizers.
func (w *detWalker) call(n *ast.CallExpr) {
	if sortArg := sortCallArg(n, w.info()); sortArg != nil {
		w.clearExpr(sortArg)
		// sort.Sort(byX(s)) wraps the slice in a conversion/constructor.
		if inner, ok := ast.Unparen(sortArg).(*ast.CallExpr); ok && len(inner.Args) == 1 {
			w.clearExpr(inner.Args[0])
		}
		return
	}
	sink, isSink := sinkCall(n, w.info())
	if !isSink {
		return
	}
	if len(w.mapRanges) > 0 {
		w.report(n.Pos(), "map iteration order reaches %s (sort the keys first)", sink)
		return
	}
	for _, arg := range n.Args {
		if t := w.lookup(arg); t != nil {
			w.report(n.Pos(), "%s carries %s and reaches %s without an intervening sort", types.ExprString(arg), t.origin, sink)
		} else if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok && w.calleeOrdered(call) {
			w.report(n.Pos(), "the unsorted map-order result of %s reaches %s", calleeName(call, w.info()), sink)
		} else {
			w.compositeSink(arg)
		}
	}
}

// compositeSink reports tainted values placed into json/csv-tagged fields
// of a composite literal.
func (w *detWalker) compositeSink(e ast.Expr) {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return
	}
	st, ok := typeStruct(w.info().TypeOf(cl))
	if !ok {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		t := w.lookup(kv.Value)
		if t == nil {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() != key.Name {
				continue
			}
			if tag := serialTag(st.Tag(i)); tag != "" {
				w.report(kv.Pos(), "%s-tagged field %s is initialized with a value carrying %s without an intervening sort", tag, key.Name, t.origin)
			}
		}
	}
}

func (w *detWalker) report(pos token.Pos, format string, args ...any) {
	if w.factsOnly {
		return
	}
	w.c.Reportf(pos, format, args...)
}

// --- taint bookkeeping -----------------------------------------------------

func (w *detWalker) taintExpr(e ast.Expr, origin string) {
	key := types.ExprString(ast.Unparen(e))
	if key == "_" || key == "" {
		return
	}
	w.tainted[key] = &taint{origin: origin}
}

// lookup returns the taint on e, on a field chain under e (json.Marshal(res)
// with res.Rows tainted), or on a chain e is part of.
func (w *detWalker) lookup(e ast.Expr) *taint {
	key := types.ExprString(ast.Unparen(e))
	if t, ok := w.tainted[key]; ok {
		return t
	}
	for k, t := range w.tainted {
		if strings.HasPrefix(k, key+".") || strings.HasPrefix(key, k+".") {
			return t
		}
	}
	return nil
}

func (w *detWalker) clearExpr(e ast.Expr) {
	key := types.ExprString(ast.Unparen(e))
	delete(w.tainted, key)
	for k := range w.tainted {
		if strings.HasPrefix(k, key+".") {
			delete(w.tainted, k)
		}
	}
}

// declaredBefore reports whether the variable at the root of e was
// declared before pos (so a loop-body append accumulates across
// iterations rather than building a per-iteration value).
func (w *detWalker) declaredBefore(e ast.Expr, pos token.Pos) bool {
	root := ast.Unparen(e)
	for {
		if sel, ok := root.(*ast.SelectorExpr); ok {
			root = sel.X
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return true // fields, indexes: assume pre-existing
	}
	obj := w.info().Uses[id]
	if obj == nil {
		obj = w.info().Defs[id]
	}
	return obj == nil || obj.Pos() < pos
}

// calleeOrdered reports whether the call's target carries OrderedFact.
func (w *detWalker) calleeOrdered(call *ast.CallExpr) bool {
	obj := calleeObj(call, w.info())
	if obj == nil {
		return false
	}
	_, ok := w.c.Fact(obj)
	return ok
}

// taggedField returns ("json"|"csv", fieldName) when lhs selects a struct
// field carrying a json or csv tag.
func (w *detWalker) taggedField(lhs ast.Expr) (string, string) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := w.info().Selections[sel]
	if !ok {
		return "", ""
	}
	st, ok := typeStruct(selection.Recv())
	if !ok {
		return "", ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == selection.Obj() {
			if tag := serialTag(st.Tag(i)); tag != "" {
				return tag, sel.Sel.Name
			}
		}
	}
	return "", ""
}

// --- shared type/call helpers ----------------------------------------------

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func typeStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// serialTag returns "json" or "csv" when the struct tag marks the field
// for serialization (ignoring `json:"-"`).
func serialTag(tag string) string {
	st := structTag(tag)
	for _, key := range []string{"json", "csv"} {
		if v, ok := st.lookup(key); ok && v != "-" {
			return key
		}
	}
	return ""
}

// structTag is a minimal reflect.StructTag replica (reflect is avoided so
// the analyzer stays purely syntactic/typed).
type structTag string

func (t structTag) lookup(key string) (string, bool) {
	s := string(t)
	for s != "" {
		s = strings.TrimLeft(s, " ")
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		name := s[:i]
		s = s[i+1:]
		if len(s) == 0 || s[0] != '"' {
			break
		}
		j := 1
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(s) {
			break
		}
		val := s[1:j]
		s = s[j+1:]
		if name == key {
			return val, true
		}
	}
	return "", false
}

func isBuiltinAppend(call *ast.CallExpr, info *types.Info) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeObj resolves the called function or method object, or nil.
func calleeObj(call *ast.CallExpr, info *types.Info) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName renders the callee for messages ("pkg.F" or "T.M" best-effort).
func calleeName(call *ast.CallExpr, info *types.Info) string {
	return types.ExprString(ast.Unparen(call.Fun))
}

// sortCallArg returns the sorted argument when call is a recognized sort
// (sort.* or slices.Sort*), else nil.
func sortCallArg(call *ast.CallExpr, info *types.Info) ast.Expr {
	obj := calleeObj(call, info)
	if obj == nil || obj.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	switch obj.Pkg().Path() {
	case "sort":
		switch obj.Name() {
		case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable":
			return call.Args[0]
		}
	case "slices":
		if strings.HasPrefix(obj.Name(), "Sort") {
			return call.Args[0]
		}
	}
	return nil
}

// sinkCall reports whether call serializes its arguments, and what to call
// the sink in the diagnostic.
func sinkCall(call *ast.CallExpr, info *types.Info) (string, bool) {
	obj := calleeObj(call, info)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name := obj.Name()
	switch obj.Pkg().Path() {
	case "encoding/json":
		switch name {
		case "Marshal", "MarshalIndent", "Encode":
			return "encoding/json." + name, true
		}
	case "encoding/csv":
		switch name {
		case "Write", "WriteAll":
			return "encoding/csv." + name, true
		}
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + name, true
		}
	case "io":
		if name == "Write" || name == "WriteString" {
			return "io.Writer." + name, true
		}
	case "bytes", "strings", "bufio", "hash":
		if strings.HasPrefix(name, "Write") {
			return obj.Pkg().Path() + " " + name, true
		}
	}
	return "", false
}
