// The golife pass: every `go` statement must be tied to something that can
// stop it or wait for it — a context, a WaitGroup, or a stop/work channel.
// An untied goroutine is how SIGTERM drains hang, leak tests flake, and
// fleet workers die with work in flight. The evidence accepted:
//
//   - the goroutine body mentions a context.Context;
//   - it mentions a sync.WaitGroup (Done on spawn paths, Wait on drains);
//   - it receives from, sends to, ranges over, or closes a channel that
//     exists outside the goroutine body (a work, result, or stop
//     channel) — channels created inside the body (time.After loops and
//     the like) do not count;
//   - it calls a function that is itself governed (its body shows the
//     same evidence), which rides the fact store so `go s.loop()` is
//     accepted across packages when loop selects on s.stop.
//
// Anything else is reported. A goroutine genuinely meant to outlive its
// spawner (a process-lifetime monitor) carries //vgiw:allow golife with
// its justification.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GovernedFact marks a function whose body contains lifecycle evidence, so
// `go f()` with no tying arguments is still accepted when f governs itself.
type GovernedFact struct{}

// GolifePass returns the goroutine-lifecycle pass.
func GolifePass() *Pass {
	return &Pass{
		Name: "golife",
		Doc:  "every go statement ties to a ctx, WaitGroup, or stop channel",
		Run:  runGolife,
	}
}

func runGolife(c *Context) {
	info := c.Unit.Info
	// Phase 1: export self-governance facts for every function in this
	// unit, so same-package `go f()` spawns see them independent of
	// declaration order (importers see them via unit load ordering).
	for _, fd := range funcDecls(c.Unit) {
		if c.bodyGoverned(fd.Body, fd.Body.Pos(), fd.Body.End()) {
			if obj := info.Defs[fd.Name]; obj != nil {
				c.ExportFact(obj, GovernedFact{})
			}
		}
	}
	for _, fd := range funcDecls(c.Unit) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !c.goStmtGoverned(g) {
				c.Reportf(g.Go, "goroutine in %s is not tied to a context, WaitGroup, or stop channel (no way to cancel or await it)", fd.Name.Name)
			}
			return true
		})
	}
}

func (c *Context) goStmtGoverned(g *ast.GoStmt) bool {
	info := c.Unit.Info
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return c.bodyGoverned(lit.Body, lit.Pos(), lit.End())
	}
	// Named spawn: a tying argument is evidence; so is a callee that
	// governs itself (fact).
	for _, arg := range call.Args {
		if tiesLifecycle(info.TypeOf(arg)) {
			return true
		}
	}
	if obj := calleeObj(call, info); obj != nil {
		if _, ok := c.Fact(obj); ok {
			return true
		}
	}
	return false
}

// bodyGoverned reports lifecycle evidence inside body, whose source range
// is [lo,hi): a ctx or WaitGroup mention, a channel operation on a channel
// declared outside the range, or a call to a governed function.
func (c *Context) bodyGoverned(body ast.Node, lo, hi token.Pos) bool {
	info := c.Unit.Info
	governed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if governed {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			t := info.TypeOf(n)
			if isContextType(t) || isWaitGroup(t) {
				governed = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && externalChan(n.X, lo, hi, info) {
				governed = true
			}
		case *ast.SendStmt:
			if externalChan(n.Chan, lo, hi, info) {
				governed = true
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok && externalChan(n.X, lo, hi, info) {
				governed = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 && externalChan(n.Args[0], lo, hi, info) {
					governed = true
					return false
				}
			}
			if obj := calleeObj(n, info); obj != nil {
				if _, ok := c.Fact(obj); ok {
					governed = true
				}
			}
		}
		return !governed
	})
	return governed
}

// externalChan reports whether e is a channel-typed expression rooted in a
// variable declared outside [lo,hi) — i.e. a channel the spawner (or a
// longer-lived struct) owns, as opposed to one the goroutine made itself.
func externalChan(e ast.Expr, lo, hi token.Pos, info *types.Info) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	root := ast.Unparen(e)
	for {
		switch r := root.(type) {
		case *ast.SelectorExpr:
			root = r.X
			continue
		case *ast.IndexExpr:
			root = r.X
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return false // call results (time.After()) are body-local
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && (obj.Pos() < lo || obj.Pos() >= hi)
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "WaitGroup" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// tiesLifecycle reports whether a value of type t can cancel or await a
// goroutine: contexts, channels, and WaitGroup pointers qualify.
func tiesLifecycle(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) || isWaitGroup(t) {
		return true
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
