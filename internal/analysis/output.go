// Output rendering: the human form mirrors vgiwlint/go vet
// ("file:line:col: check: msg", paths relative to the module root so
// output is stable across checkouts); the JSON form is the machine
// contract `make analyze` and any future tooling consume.

package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// relativize rewrites d's filename relative to root when it lies under it.
func relativize(d Diagnostic, root string) Diagnostic {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// RenderHuman writes one "file:line:col: check: msg" line per diagnostic.
func RenderHuman(w io.Writer, diags []Diagnostic, root string) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s\n", relativize(d, root)); err != nil {
			return err
		}
	}
	return nil
}

// JSONDiagnostic is the stable machine-output schema of `vgiwcheck -json`.
type JSONDiagnostic struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

// RenderJSON writes the diagnostics as a JSON array (always an array, so
// consumers can `len()` it without a null check).
func RenderJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		d = relativize(d, root)
		out = append(out, JSONDiagnostic{
			File:  d.Pos.Filename,
			Line:  d.Pos.Line,
			Col:   d.Pos.Column,
			Check: d.Check,
			Msg:   d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
