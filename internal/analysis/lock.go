// The lock pass: three sync-discipline checks that -race only catches when
// the bad interleaving actually happens.
//
//   - copy: a value containing a sync.Mutex/RWMutex/Cond/WaitGroup/Once
//     must not be copied — value receivers, by-value parameters, and
//     by-value range variables all silently fork the lock state. (go vet's
//     copylocks overlaps here; this pass keeps the property inside the
//     repo's own gate and its corpus.)
//   - block: inside an explicit Lock()…Unlock() window, blocking
//     operations — channel sends/receives (unless in a select with a
//     default), time.Sleep, WaitGroup.Wait, and net/http round-trips —
//     stall every other acquirer. deferred Unlocks are exempt: the repo's
//     handler idiom is lock-with-defer around small critical sections, and
//     flagging those would drown the signal; the explicit window is where
//     the hand-ordered Unlock makes a held blocking op both likely and
//     fixable.
//   - condwait: sync.Cond.Wait must sit in a `for` re-check loop; an `if`
//     around Wait is the textbook lost-wakeup bug.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockPass returns the lock-discipline pass.
func LockPass() *Pass {
	return &Pass{
		Name: "lock",
		Doc:  "no lock copies, no blocking ops in explicit lock windows, cond.Wait in a loop",
		Run:  runLock,
	}
}

func runLock(c *Context) {
	info := c.Unit.Info
	for _, fd := range funcDecls(c.Unit) {
		// copy: value receivers and by-value parameters.
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			if lt := lockInType(info.TypeOf(fd.Recv.List[0].Type)); lt != "" {
				c.Reportf(fd.Recv.List[0].Type.Pos(), "method %s has a value receiver that copies %s; use a pointer receiver", fd.Name.Name, lt)
			}
		}
		for _, field := range fd.Type.Params.List {
			if lt := lockInType(info.TypeOf(field.Type)); lt != "" {
				c.Reportf(field.Type.Pos(), "parameter of %s passes %s by value; pass a pointer", fd.Name.Name, lt)
			}
		}
		lw := &lockWalker{c: c, fd: fd}
		lw.walkBlock(fd.Body.List, map[string]bool{})
		checkCondWaitLoops(c, fd)
		checkRangeCopies(c, fd)
	}
}

// lockInType returns a description of the lock type contained (directly or
// via struct fields/arrays) in t, or "".
func lockInType(t types.Type) string {
	return lockInTypeRec(t, 0)
}

func lockInTypeRec(t types.Type, depth int) string {
	if t == nil || depth > 10 {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				switch obj.Name() {
				case "Mutex", "RWMutex", "Cond", "WaitGroup", "Once", "Pool", "Map":
					return "sync." + obj.Name()
				}
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			if lt := lockInTypeRec(u.Field(i).Type(), depth+1); lt != "" {
				return lt
			}
		}
	case *types.Array:
		return lockInTypeRec(u.Elem(), depth+1)
	}
	return ""
}

// checkRangeCopies flags `for _, v := range xs` where v copies a
// lock-containing element.
func checkRangeCopies(c *Context, fd *ast.FuncDecl) {
	info := c.Unit.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.Value == nil {
			return true
		}
		if lt := lockInType(info.TypeOf(rs.Value)); lt != "" {
			c.Reportf(rs.Value.Pos(), "range value copies %s each iteration; range over indices or pointers", lt)
		}
		return true
	})
}

// lockWalker tracks explicitly held locks through a statement list. held
// maps the lock's receiver expression text to true while an explicit
// (non-deferred) Lock window is open.
type lockWalker struct {
	c  *Context
	fd *ast.FuncDecl
}

func (lw *lockWalker) info() *types.Info { return lw.c.Unit.Info }

// walkBlock processes stmts in order with the given held-set; nested
// control flow gets a copy (a lock acquired inside a branch is considered
// released when the branch ends — conservative in the quiet direction).
func (lw *lockWalker) walkBlock(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		lw.walkStmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (lw *lockWalker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, kind := lockMethodCall(call, lw.info()); kind != "" {
				switch kind {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				return
			}
		}
		lw.checkBlocking(s.X, held)
	case *ast.DeferStmt:
		if recv, kind := lockMethodCall(s.Call, lw.info()); kind == "Unlock" || kind == "RUnlock" {
			// The deferred-unlock idiom closes the explicit window: from
			// here on the lock is held to function end by design, which
			// this check deliberately tolerates (see package comment).
			delete(held, recv)
			return
		}
	case *ast.BlockStmt:
		lw.walkBlock(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, held)
		}
		lw.checkBlocking(s.Cond, held)
		lw.walkStmt(s.Body, copyHeld(held))
		if s.Else != nil {
			lw.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		lw.walkStmt(s.Body, copyHeld(held))
	case *ast.RangeStmt:
		lw.checkBlocking(s.X, held)
		lw.walkStmt(s.Body, copyHeld(held))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		for _, child := range children(s) {
			if st, ok := child.(ast.Stmt); ok {
				lw.walkStmt(st, copyHeld(held))
			}
		}
	case *ast.CaseClause:
		lw.walkBlock(s.Body, copyHeld(held))
	case *ast.SelectStmt:
		// A select with a default never blocks; one without can park the
		// goroutine while the lock is held.
		if len(held) > 0 && !selectHasDefault(s) {
			for recv := range held {
				lw.c.Reportf(s.Select, "blocking select while %s is locked (explicit Lock without deferred Unlock)", recv)
			}
		}
		for _, cl := range s.Body.List {
			lw.walkBlock(cl.(*ast.CommClause).Body, copyHeld(held))
		}
	case *ast.GoStmt:
		// The spawned goroutine does not hold the caller's locks.
	case *ast.AssignStmt, *ast.ReturnStmt, *ast.SendStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.LabeledStmt:
		lw.checkBlocking(s, held)
	}
}

// checkBlocking reports blocking operations inside n while locks are held.
func (lw *lockWalker) checkBlocking(n ast.Node, held map[string]bool) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		switch child := child.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			return false // handled structurally in walkStmt
		case *ast.SendStmt:
			lw.reportHeld(child.Arrow, "channel send", held)
		case *ast.UnaryExpr:
			if child.Op.String() == "<-" {
				lw.reportHeld(child.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if desc := blockingCall(child, lw.info()); desc != "" {
				lw.reportHeld(child.Pos(), desc, held)
			}
		}
		return true
	})
}

func (lw *lockWalker) reportHeld(pos token.Pos, what string, held map[string]bool) {
	for recv := range held {
		lw.c.Reportf(pos, "%s while %s is locked (explicit Lock without deferred Unlock)", what, recv)
	}
}

// lockMethodCall matches x.Lock/Unlock/RLock/RUnlock where x is a
// sync.Mutex/RWMutex (possibly embedded), returning the receiver text and
// method kind.
func lockMethodCall(call *ast.CallExpr, info *types.Info) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	return types.ExprString(sel.X), name
}

// blockingCall describes calls that can block indefinitely.
func blockingCall(call *ast.CallExpr, info *types.Info) string {
	obj := calleeObj(call, info)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		// Cond.Wait releases its own lock while parked — holding that lock
		// at the call is required, not a bug; the condwait check owns it.
		if obj.Name() == "Wait" && recvTypeName(call, info) != "Cond" {
			return "sync." + recvTypeName(call, info) + ".Wait"
		}
	case "net/http":
		switch obj.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "net/http round-trip (" + obj.Name() + ")"
		}
	}
	return ""
}

func recvTypeName(call *ast.CallExpr, info *types.Info) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "?"
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "?"
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// checkCondWaitLoops flags sync.Cond.Wait calls with no enclosing for
// loop inside the function.
func checkCondWaitLoops(c *Context, fd *ast.FuncDecl) {
	info := c.Unit.Info
	var walk func(n ast.Node, inFor bool)
	walk = func(n ast.Node, inFor bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			for _, child := range children(n) {
				walk(child, true)
			}
			return
		case *ast.FuncLit:
			walk(n.Body, false)
			return
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					if t := info.TypeOf(sel.X); t != nil && condType(t) && !inFor {
						c.Reportf(n.Pos(), "sync.Cond.Wait outside a for loop: spurious wakeups require re-checking the condition in a loop")
					}
				}
			}
		}
		for _, child := range children(n) {
			walk(child, inFor)
		}
	}
	walk(fd.Body, false)
}

func condType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Cond" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}
